(* Harness tests: statistics, table/figure rendering, the paper's
   reference data, and — most importantly — that the simulated class-C
   experiments reproduce the *shape* of every table and figure: who
   wins, roughly by how much, and where the curves bend. *)

let test_stats () =
  Alcotest.(check (float 1e-12)) "mean" 2. (Harness.Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-12)) "stddev" 1.
    (Harness.Stats.stddev [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-12)) "median odd" 2.
    (Harness.Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-12)) "median even" 2.5
    (Harness.Stats.median [ 4.; 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-12)) "rel err" 0.1
    (Harness.Stats.rel_err ~reference:10. 11.)

let test_table_render () =
  let out =
    Harness.Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ]
  in
  Alcotest.(check bool) "aligned pipe table" true
    (String.length out > 0 && String.contains out '|');
  (* all rows same width *)
  let widths =
    List.map String.length (String.split_on_char '\n' out)
  in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (( = ) (List.hd widths)) widths)

let test_paper_data_consistent () =
  List.iter
    (fun (t : Harness.Paper.table) ->
      Alcotest.(check int)
        (t.name ^ ": ported column length")
        (List.length t.threads) (List.length t.ported);
      Alcotest.(check int)
        (t.name ^ ": reference column length")
        (List.length t.threads) (List.length t.reference);
      (* runtimes decrease with thread count in every published column *)
      let decreasing l =
        List.for_all2 (fun a b -> b <= a) (List.filteri (fun i _ -> i < List.length l - 1) l)
          (List.tl l)
      in
      Alcotest.(check bool) (t.name ^ ": ported monotone") true
        (decreasing t.ported);
      Alcotest.(check bool) (t.name ^ ": reference monotone") true
        (decreasing t.reference))
    Harness.Paper.tables

let test_speedup_derivation () =
  let s = Harness.Paper.speedups [ 1; 2; 4 ] [ 10.; 5.; 2.5 ] in
  Alcotest.(check (list (pair int (float 1e-12)))) "t1/tN"
    [ (1, 1.); (2, 2.); (4, 4.) ] s

(* ---- shape reproduction (the headline claims) ---- *)

let sim kernel lang nt =
  Harness.Experiment.sim_time kernel lang ~nthreads:nt

let test_table1_shape_cg () =
  (* Zig beats Fortran serially by ~1.14x; both scale; super-linear
     region between 64 and 128 *)
  let z1 = sim Harness.Experiment.CG Npb.Classes.Zig 1 in
  let f1 = sim Harness.Experiment.CG Npb.Classes.Fortran 1 in
  Alcotest.(check bool) "Fortran serial slower" true (f1 > z1);
  Alcotest.(check bool) "serial ratio near the paper's 1.14" true
    (f1 /. z1 > 1.05 && f1 /. z1 < 1.25);
  let z64 = sim Harness.Experiment.CG Npb.Classes.Zig 64 in
  let z128 = sim Harness.Experiment.CG Npb.Classes.Zig 128 in
  Alcotest.(check bool) "64->128 threads more than doubles (cache fit)"
    true (z64 /. z128 > 2.0);
  Alcotest.(check bool) "absolute serial within 15% of the paper" true
    (Float.abs (Harness.Stats.rel_err ~reference:149.40 z1) < 0.15)

let test_table2_shape_ep () =
  (* EP is compute bound: near-perfect scaling for both languages and a
     constant language gap *)
  let z1 = sim Harness.Experiment.EP Npb.Classes.Zig 1 in
  let z64 = sim Harness.Experiment.EP Npb.Classes.Zig 64 in
  let f1 = sim Harness.Experiment.EP Npb.Classes.Fortran 1 in
  Alcotest.(check bool) "speedup at 64 within 5% of perfect" true
    (z1 /. z64 /. 64. > 0.95);
  Alcotest.(check bool) "Fortran ~1.25x slower (paper's ratio)" true
    (f1 /. z1 > 1.2 && f1 /. z1 < 1.3);
  Alcotest.(check bool) "absolute serial within 10% of the paper" true
    (Float.abs (Harness.Stats.rel_err ~reference:147.66 z1) < 0.10)

let test_table3_shape_is () =
  (* IS: C wins serially (the one benchmark where the port loses), and
     scaling saturates — 128 threads buy little over 64 *)
  let z1 = sim Harness.Experiment.IS Npb.Classes.Zig 1 in
  let c1 = sim Harness.Experiment.IS Npb.Classes.C_lang 1 in
  Alcotest.(check bool) "C reference faster serially" true (c1 < z1);
  let z64 = sim Harness.Experiment.IS Npb.Classes.Zig 64 in
  let z128 = sim Harness.Experiment.IS Npb.Classes.Zig 128 in
  Alcotest.(check bool) "saturated past 64 threads" true
    (z64 /. z128 < 1.25);
  Alcotest.(check bool) "speedup at 128 in the paper's 30-60x band" true
    (z1 /. z128 > 30. && z1 /. z128 < 60.)

let test_tables_render_with_low_deviation () =
  List.iter
    (fun kernel ->
      let text, dev = Harness.Experiment.table kernel in
      Alcotest.(check bool)
        (Harness.Experiment.kernel_name kernel ^ " table renders")
        true
        (String.length text > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s mean |deviation| %.1f%% under 25%%"
           (Harness.Experiment.kernel_name kernel) (100. *. dev))
        true (dev < 0.25))
    [ Harness.Experiment.CG; Harness.Experiment.EP; Harness.Experiment.IS ]

let test_figures_render () =
  List.iter
    (fun kernel ->
      let fig = Harness.Experiment.figure kernel in
      Alcotest.(check bool) "figure renders" true (String.length fig > 100))
    [ Harness.Experiment.CG; Harness.Experiment.EP; Harness.Experiment.IS ]

let test_real_run_small () =
  let r =
    Harness.Experiment.real_run Harness.Experiment.IS ~cls:Npb.Classes.S
      ~nthreads:2 ()
  in
  Alcotest.(check bool) "real IS S run verifies" true (Npb.Result.verified r)

let suite =
  [ Alcotest.test_case "statistics" `Quick test_stats;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "paper data consistency" `Quick
      test_paper_data_consistent;
    Alcotest.test_case "speedup derivation" `Quick test_speedup_derivation;
    Alcotest.test_case "Table I shape (CG)" `Slow test_table1_shape_cg;
    Alcotest.test_case "Table II shape (EP)" `Slow test_table2_shape_ep;
    Alcotest.test_case "Table III shape (IS)" `Slow test_table3_shape_is;
    Alcotest.test_case "tables render, deviation bounded" `Slow
      test_tables_render_with_low_deviation;
    Alcotest.test_case "figures render" `Slow test_figures_render;
    Alcotest.test_case "real small run" `Quick test_real_run_small;
  ]

(* paper — regenerate every table and figure of the paper's evaluation
   section on the simulated ARCHER2 node and print them next to the
   published numbers. *)

let () =
  print_endline
    "Reproduction of the evaluation of \"Pragma driven shared memory\n\
     parallelism in Zig by supporting OpenMP loop directives\" (SC-W 2024).\n\
     Timing columns marked 'model' come from the discrete-event ARCHER2\n\
     node simulator; 'paper' columns are the published measurements.\n";
  print_endline (Harness.Experiment.all_artifacts ())

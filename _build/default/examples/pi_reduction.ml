(* Schedules and reductions: approximate pi by midpoint integration of
   4/(1+x^2), once per loop schedule, plus the paper's CAS-loop
   multiplication reduction computing a geometric product.

   Run with:  dune exec examples/pi_reduction.exe *)

let pi_src schedule = Printf.sprintf {|
fn pi(steps: i64) f64 {
    var sum: f64 = 0.0;
    var width: f64 = 0.0;
    width = 1.0 / float_of(steps);
    var i: i64 = 0;
    //$omp parallel for reduction(+: sum) firstprivate(width) %s
    while (i < steps) : (i += 1) {
        var x: f64 = 0.0;
        x = (float_of(i) + 0.5) * width;
        sum += 4.0 / (1.0 + x * x);
    }
    return sum * width;
}
|} schedule

let product_src = {|
fn half_life(n: i64) f64 {
    var remaining: f64 = 1.0;
    var i: i64 = 0;
    //$omp parallel for reduction(*: remaining)
    while (i < n) : (i += 1) {
        remaining *= 0.5;
    }
    return remaining;
}
|}

let () =
  Zigomp.set_num_threads 4;
  let steps = 400_000 in
  print_endline "pi by midpoint integration, one run per schedule:";
  List.iter
    (fun schedule ->
      let p = Zigomp.compile ~name:"pi.zr" (pi_src schedule) in
      let t0 = Unix.gettimeofday () in
      let v = Zigomp.call p "pi" [ Zigomp.Value.VInt steps ] in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "  %-24s pi = %-20s (%.2f s)\n"
        (if schedule = "" then "(default static)" else schedule)
        (Zigomp.Value.to_string v) dt)
    [ ""; "schedule(static, 1000)"; "schedule(dynamic, 5000)";
      "schedule(guided, 1000)" ];
  Printf.printf "  reference                 pi = %.15f\n\n" (4. *. atan 1.);

  (* multiplication is not a native atomic in Zig: the runtime uses the
     compare-and-swap loop of the paper's Listing 6 *)
  let p = Zigomp.compile ~name:"half.zr" product_src in
  let v = Zigomp.call p "half_life" [ Zigomp.Value.VInt 16 ] in
  Printf.printf
    "CAS-loop multiplication reduction: 0.5^16 = %s (expected %.9f)\n"
    (Zigomp.Value.to_string v)
    (0.5 ** 16.)

examples/pi_reduction.ml: List Printf Unix Zigomp

examples/interop_cg.mli:

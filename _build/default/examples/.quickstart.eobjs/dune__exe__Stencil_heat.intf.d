examples/stencil_heat.mli:

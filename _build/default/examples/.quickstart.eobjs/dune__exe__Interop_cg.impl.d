examples/interop_cg.ml: Array Float List Npb Printf Zigomp

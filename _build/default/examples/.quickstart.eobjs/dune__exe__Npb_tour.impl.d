examples/npb_tour.ml: Format Harness List Npb Printf

examples/quickstart.ml: Array Printf Zigomp

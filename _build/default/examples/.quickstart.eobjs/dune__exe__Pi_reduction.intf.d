examples/pi_reduction.mli:

examples/npb_tour.mli:

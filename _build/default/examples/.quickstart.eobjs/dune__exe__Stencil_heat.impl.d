examples/stencil_heat.ml: Array Float Printf Zigomp

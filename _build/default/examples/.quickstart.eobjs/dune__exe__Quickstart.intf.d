examples/quickstart.mli:

(* Language interoperability, the paper's section IV applied to CG.

   The paper ports only the conj_grad subroutine (~95% of the runtime)
   from Fortran to Zig and links the two languages together.  This
   example does the same split: matrix generation and the outer
   iteration driver run in OCaml (the "Fortran side"), while conj_grad
   is written in Zr with the same OpenMP pragmas the paper uses —
   worksharing loops, nowait between an SpMV and the dot product that
   consumes it on the same partition, and reductions.

   The Zr result is checked against the pure-OCaml serial conj_grad on
   the same matrix.

   Run with:  dune exec examples/interop_cg.exe *)

let conj_grad_zr = {|
fn conj_grad(n: i64, rowstr: []i64, colidx: []i64, a: []f64,
             x: []f64, z: []f64, p: []f64, q: []f64, r: []f64) f64 {
    var rho: f64 = 0.0;
    var d: f64 = 0.0;
    var rnorm: f64 = 0.0;
    //$omp parallel shared(rowstr, colidx, a, x, z, p, q, r, rho, d, rnorm) firstprivate(n)
    {
        var j: i64 = 0;
        //$omp for
        while (j < n) : (j += 1) {
            q[j] = 0.0;
            z[j] = 0.0;
            r[j] = x[j];
            p[j] = x[j];
        }
        var j0: i64 = 0;
        //$omp for reduction(+: rho)
        while (j0 < n) : (j0 += 1) {
            rho += r[j0] * r[j0];
        }
        var cgit: i64 = 0;
        while (cgit < 25) : (cgit += 1) {
            var j1: i64 = 0;
            //$omp for nowait
            while (j1 < n) : (j1 += 1) {
                var s: f64 = 0.0;
                var k: i64 = 0;
                k = rowstr[j1];
                while (k < rowstr[j1 + 1]) : (k += 1) {
                    s += a[k] * p[colidx[k]];
                }
                q[j1] = s;
            }
            //$omp single
            { d = 0.0; }
            var j2: i64 = 0;
            //$omp for reduction(+: d)
            while (j2 < n) : (j2 += 1) {
                d += p[j2] * q[j2];
            }
            var alpha: f64 = 0.0;
            alpha = rho / d;
            var rho0: f64 = 0.0;
            rho0 = rho;
            var j3: i64 = 0;
            //$omp for
            while (j3 < n) : (j3 += 1) {
                z[j3] = z[j3] + alpha * p[j3];
                r[j3] = r[j3] - alpha * q[j3];
            }
            //$omp single
            { rho = 0.0; }
            var j4: i64 = 0;
            //$omp for reduction(+: rho)
            while (j4 < n) : (j4 += 1) {
                rho += r[j4] * r[j4];
            }
            var beta: f64 = 0.0;
            beta = rho / rho0;
            var j5: i64 = 0;
            //$omp for
            while (j5 < n) : (j5 += 1) {
                p[j5] = r[j5] + beta * p[j5];
            }
        }
        var j6: i64 = 0;
        //$omp for nowait
        while (j6 < n) : (j6 += 1) {
            var s: f64 = 0.0;
            var k: i64 = 0;
            k = rowstr[j6];
            while (k < rowstr[j6 + 1]) : (k += 1) {
                s += a[k] * z[colidx[k]];
            }
            r[j6] = s;
        }
        //$omp single
        { rnorm = 0.0; }
        var j7: i64 = 0;
        //$omp for reduction(+: rnorm)
        while (j7 < n) : (j7 += 1) {
            var dd: f64 = 0.0;
            dd = x[j7] - r[j7];
            rnorm += dd * dd;
        }
        //$omp master
        { host_record_rnorm(sqrt(rnorm)); }
    }
    return sqrt(rnorm);
}
|}

module V = Zigomp.Value

let () =
  Zigomp.set_num_threads 4;
  (* "Fortran side": build a small CG instance with the NPB generator. *)
  let params =
    { (Npb.Classes.Cg.params Npb.Classes.S) with
      Npb.Classes.Cg.na = 250; nonzer = 6; shift = 12.; niter = 4 }
  in
  let rng = Npb.Randlc.create 314159265.0 in
  let _zeta0 = Npb.Randlc.draw rng in
  let m = Npb.Cg.make_matrix params rng in
  let n = m.Npb.Cg.n in
  Printf.printf "matrix: n = %d, nnz = %d (built on the host)\n" n m.Npb.Cg.nnz;

  (* Host callback available to the Zr side, like an extern symbol. *)
  let recorded = ref [] in
  Zigomp.register_host "host_record_rnorm" (function
    | [ V.VFloat r ] -> recorded := r :: !recorded; V.VUnit
    | _ -> failwith "host_record_rnorm: bad arguments");

  let prog = Zigomp.compile ~name:"conj_grad.zr" conj_grad_zr in
  let alloc () = Array.make n 0. in
  let x = Array.make n 1.0 in
  let z = alloc () and p = alloc () and q = alloc () and r = alloc () in
  let farr a = V.VFloatArr a in
  let call_zr () =
    match
      Zigomp.call prog "conj_grad"
        [ V.VInt n; V.VIntArr m.Npb.Cg.rowstr; V.VIntArr m.Npb.Cg.colidx;
          farr m.Npb.Cg.a; farr x; farr z; farr p; farr q; farr r ]
    with
    | V.VFloat rnorm -> rnorm
    | v -> failwith ("unexpected result " ^ V.to_string v)
  in

  (* The outer NPB driver stays on the host: normalise, update zeta. *)
  let zeta = ref 0. in
  for it = 1 to params.Npb.Classes.Cg.niter do
    let rnorm = call_zr () in
    let n1 = ref 0. and n2 = ref 0. in
    for j = 0 to n - 1 do
      n1 := !n1 +. (x.(j) *. z.(j));
      n2 := !n2 +. (z.(j) *. z.(j))
    done;
    zeta := params.Npb.Classes.Cg.shift +. (1.0 /. !n1);
    let scale = 1.0 /. sqrt !n2 in
    for j = 0 to n - 1 do x.(j) <- scale *. z.(j) done;
    Printf.printf "  iter %d: rnorm = %.3e, zeta = %.13f\n" it rnorm !zeta
  done;

  (* Cross-check: same matrix, pure-OCaml serial conj_grad. *)
  Array.fill x 0 n 1.0;
  let zeta_ref = ref 0. in
  for _it = 1 to params.Npb.Classes.Cg.niter do
    ignore (Npb.Cg.conj_grad_serial m x z p q r);
    let n1 = ref 0. and n2 = ref 0. in
    for j = 0 to n - 1 do
      n1 := !n1 +. (x.(j) *. z.(j));
      n2 := !n2 +. (z.(j) *. z.(j))
    done;
    zeta_ref := params.Npb.Classes.Cg.shift +. (1.0 /. !n1);
    let scale = 1.0 /. sqrt !n2 in
    for j = 0 to n - 1 do x.(j) <- scale *. z.(j) done
  done;
  Printf.printf "zeta (Zr conj_grad, 4 threads) = %.13f\n" !zeta;
  Printf.printf "zeta (OCaml serial reference)  = %.13f\n" !zeta_ref;
  Printf.printf "host callbacks received        = %d\n"
    (List.length !recorded);
  if not (Float.abs (!zeta -. !zeta_ref) <= 1e-9) then begin
    prerr_endline "MISMATCH between Zr and the serial reference";
    exit 1
  end;
  print_endline "MATCH: the Zr port reproduces the host computation."

(* A 1-D heat-diffusion stencil: one parallel region for the whole time
   loop, a worksharing loop per sweep, and barriers separating the
   read/write phases — the canonical "iterative algorithm" pattern the
   paper's CG benchmark represents.  The result is checked against a
   serial OCaml implementation of the same scheme.

   Run with:  dune exec examples/stencil_heat.exe *)

let program = {|
fn diffuse(n: i64, steps: i64, u: []f64, v: []f64) f64 {
    //$omp parallel shared(u, v) firstprivate(n, steps)
    {
        var t: i64 = 0;
        while (t < steps) : (t += 1) {
            var i: i64 = 1;
            //$omp for
            while (i < n - 1) : (i += 1) {
                v[i] = u[i] + 0.25 * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
            }
            var j: i64 = 1;
            //$omp for
            while (j < n - 1) : (j += 1) {
                u[j] = v[j];
            }
        }
    }
    var total: f64 = 0.0;
    var k: i64 = 0;
    while (k < n) : (k += 1) {
        total += u[k];
    }
    return total;
}
|}

let serial_reference n steps =
  let u = Array.init n (fun i -> if i = n / 2 then 1000. else 0.) in
  let v = Array.make n 0. in
  for _ = 1 to steps do
    for i = 1 to n - 2 do
      v.(i) <- u.(i) +. (0.25 *. (u.(i - 1) -. (2. *. u.(i)) +. u.(i + 1)))
    done;
    Array.blit v 1 u 1 (n - 2)
  done;
  u

let () =
  Zigomp.set_num_threads 4;
  let n = 4096 and steps = 500 in
  let u = Array.init n (fun i -> if i = n / 2 then 1000. else 0.) in
  let v = Array.make n 0. in
  let compiled = Zigomp.compile ~name:"heat.zr" program in
  let total =
    Zigomp.call compiled "diffuse"
      [ Zigomp.Value.VInt n; Zigomp.Value.VInt steps;
        Zigomp.Value.VFloatArr u; Zigomp.Value.VFloatArr v ]
  in
  let reference = serial_reference n steps in
  let max_err = ref 0. in
  Array.iteri
    (fun i x -> max_err := Float.max !max_err (Float.abs (x -. reference.(i))))
    u;
  Printf.printf "heat after %d steps on %d points (4 threads)\n" steps n;
  Printf.printf "  total heat      = %s (conserved: %.1f injected)\n"
    (Zigomp.Value.to_string total) 1000.;
  Printf.printf "  max |err| vs serial reference = %g\n" !max_err;
  Printf.printf "  centre profile: ";
  for i = (n / 2) - 3 to (n / 2) + 3 do
    Printf.printf "%.3f " u.(i)
  done;
  print_newline ();
  if !max_err > 1e-9 then begin
    prerr_endline "MISMATCH against the serial reference";
    exit 1
  end

(* Quickstart: compile a Zr function with OpenMP pragmas and call it
   from OCaml.  Shows the three pipeline stages: the pragma source, the
   preprocessor's synthesised output, and parallel execution.

   Run with:  dune exec examples/quickstart.exe *)

let program = {|
fn dot(n: i64, x: []f64, y: []f64) f64 {
    var s: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for reduction(+: s) shared(x, y)
    while (i < n) : (i += 1) {
        s += x[i] * y[i];
    }
    return s;
}
|}

let () =
  print_endline "=== Zr source with OpenMP pragmas ===";
  print_string program;

  (* Stage 1+2: what the paper's compiler passes produce. *)
  print_endline "\n=== After the OpenMP preprocessor ===";
  print_string (Zigomp.preprocess ~name:"dot.zr" program);

  (* Stage 3: run it on a real thread team. *)
  Zigomp.set_num_threads 4;
  let compiled = Zigomp.compile ~name:"dot.zr" program in
  let n = 1_000_000 in
  let x = Array.init n (fun i -> float_of_int (i mod 100) /. 100.) in
  let y = Array.init n (fun i -> float_of_int (i mod 7)) in
  let result =
    Zigomp.call compiled "dot"
      [ Zigomp.Value.VInt n; Zigomp.Value.VFloatArr x;
        Zigomp.Value.VFloatArr y ]
  in
  let expected = ref 0. in
  for i = 0 to n - 1 do expected := !expected +. (x.(i) *. y.(i)) done;
  Printf.printf "\n=== Execution on %d threads ===\n"
    (Zigomp.get_max_threads ());
  Printf.printf "dot(x, y)      = %s\n" (Zigomp.Value.to_string result);
  Printf.printf "serial check   = %.6f\n" !expected

(* A tour of the NPB benchmarks: verified real-engine runs at the small
   classes, then a modelled class-C thread sweep on the simulated
   ARCHER2 node — the data behind the paper's Table I.

   Run with:  dune exec examples/npb_tour.exe *)

let () =
  (* Real runs: compute + verify against the official NPB references. *)
  print_endline "== real engine (OCaml domains), official verification ==";
  List.iter
    (fun (kernel, cls) ->
      let r =
        Harness.Experiment.real_run kernel ~cls ~nthreads:4 ()
      in
      Format.printf "  %a@." Npb.Result.pp r)
    [ (Harness.Experiment.CG, Npb.Classes.S);
      (Harness.Experiment.IS, Npb.Classes.S);
      (Harness.Experiment.IS, Npb.Classes.W) ];

  (* Modelled class C scaling, as in the paper's evaluation. *)
  print_endline "\n== simulated ARCHER2 node, CG class C (paper Table I) ==";
  Printf.printf "  %8s %14s %14s\n" "threads" "Zig model (s)" "paper (s)";
  List.iter2
    (fun nt paper ->
      let t =
        Harness.Experiment.sim_time Harness.Experiment.CG Npb.Classes.Zig
          ~nthreads:nt
      in
      Printf.printf "  %8d %14.2f %14.2f\n%!" nt t paper)
    [ 1; 2; 16; 32; 64; 96; 128 ]
    [ 149.40; 82.34; 21.85; 11.26; 5.83; 2.80; 1.81 ]

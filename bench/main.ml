(* The benchmark harness.

   With no arguments it regenerates every artefact of the paper's
   evaluation section — Tables I-III and Figures 3-5 — on the simulated
   ARCHER2 node, then runs the microbenchmark suite (bechamel) over the
   runtime primitives and the ablation studies for the design choices
   called out in DESIGN.md.  Individual sections can be selected:

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe table1 fig3     # just CG artefacts
     dune exec bench/main.exe micro           # bechamel microbenches
     dune exec bench/main.exe interp          # AST walker vs staged compiler
     dune exec bench/main.exe pool            # hot-team pool vs spawn-per-fork
     dune exec bench/main.exe ablation        # schedule/reduction ablations *)

open Bechamel

(* ------------------------------------------------------------------ *)
(* Paper artefacts.                                                    *)

let emit_table kernel =
  let text, _ = Harness.Experiment.table kernel in
  print_endline text

let emit_figure kernel = print_endline (Harness.Experiment.figure kernel)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks: the runtime primitives the generated code leans on.
   One bechamel test per primitive; real execution on this host.       *)

let micro_tests () =
  let nt = 4 in
  let dot_prog =
    Zigomp.compile ~name:"bench_dot.zr"
      {|
fn dot(n: i64, x: []f64, y: []f64) f64 {
    var s: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for reduction(+: s) shared(x, y)
    while (i < n) : (i += 1) {
        s += x[i] * y[i];
    }
    return s;
}
|}
  in
  let x = Array.init 10_000 float_of_int in
  let y = Array.init 10_000 (fun i -> float_of_int (i mod 3)) in
  let pre_src =
    {|
fn f(n: i64) f64 {
    var s: f64 = 0.0;
    //$omp parallel reduction(+: s)
    {
        var i: i64 = 0;
        //$omp for schedule(dynamic, 8) nowait
        while (i < n) : (i += 1) { s += 1.0; }
    }
    return s;
}
|}
  in
  let fcell = Omprt.Atomics.Float.make 0. in
  let icell = Omprt.Atomics.Int.make 0 in
  [ Test.make ~name:"fork_join_4"
      (Staged.stage (fun () ->
           Omprt.Omp.parallel ~num_threads:nt (fun () -> ())));
    Test.make ~name:"barrier_x8_4thr"
      (Staged.stage (fun () ->
           Omprt.Omp.parallel ~num_threads:nt (fun () ->
               for _ = 1 to 8 do Omprt.Omp.barrier () done)));
    Test.make ~name:"ws_static_10k_iters"
      (Staged.stage (fun () ->
           Omprt.Omp.parallel ~num_threads:nt (fun () ->
               Omprt.Omp.ws_for ~lo:0 ~hi:10_000 (fun lo hi ->
                   let s = ref 0. in
                   for i = lo to hi - 1 do s := !s +. x.(i) done;
                   ignore !s))));
    Test.make ~name:"ws_dynamic64_10k_iters"
      (Staged.stage (fun () ->
           Omprt.Omp.parallel ~num_threads:nt (fun () ->
               Omprt.Omp.ws_for ~sched:(Omp_model.Sched.Dynamic 64) ~lo:0
                 ~hi:10_000 (fun lo hi ->
                   let s = ref 0. in
                   for i = lo to hi - 1 do s := !s +. x.(i) done;
                   ignore !s))));
    Test.make ~name:"ws_guided8_10k_iters"
      (Staged.stage (fun () ->
           Omprt.Omp.parallel ~num_threads:nt (fun () ->
               Omprt.Omp.ws_for ~sched:(Omp_model.Sched.Guided 8) ~lo:0
                 ~hi:10_000 (fun lo hi ->
                   let s = ref 0. in
                   for i = lo to hi - 1 do s := !s +. x.(i) done;
                   ignore !s))));
    Test.make ~name:"atomic_add_native_int"
      (Staged.stage (fun () -> Omprt.Atomics.Int.add icell 1));
    Test.make ~name:"atomic_mul_cas_loop_int"
      (Staged.stage (fun () -> Omprt.Atomics.Int.mul icell 1));
    Test.make ~name:"atomic_add_cas_loop_float"
      (Staged.stage (fun () -> Omprt.Atomics.Float.add fcell 1.0));
    Test.make ~name:"critical_section"
      (Staged.stage (fun () -> Omprt.Lock.critical (fun () -> ())));
    Test.make ~name:"preprocess_region+loop"
      (Staged.stage (fun () ->
           ignore (Zigomp.preprocess ~name:"bench.zr" pre_src)));
    Test.make ~name:"interp_dot_10k"
      (Staged.stage (fun () ->
           ignore
             (Zigomp.call dot_prog "dot"
                [ Zigomp.Value.VInt 10_000; Zigomp.Value.VFloatArr x;
                  Zigomp.Value.VFloatArr y ])));
    Test.make ~name:"sim_des_10k_events"
      (Staged.stage (fun () ->
           let des = Sim.Des.create () in
           for _ = 1 to 10 do
             Sim.Des.spawn des (fun () ->
                 for _ = 1 to 1000 do Sim.Des.advance des 1e-6 done)
           done;
           ignore (Sim.Des.run des)));
  ]

let run_micro () =
  print_endline "== microbenchmarks (real execution, bechamel OLS ns/run) ==";
  Zigomp.set_num_threads 4;
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let grouped = Test.make_grouped ~name:"micro" (micro_tests ()) in
  let raws = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raws in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) ->
      if est >= 1e6 then Printf.printf "  %-32s %12.2f ms/run\n" name (est /. 1e6)
      else if est >= 1e3 then Printf.printf "  %-32s %12.2f us/run\n" name (est /. 1e3)
      else Printf.printf "  %-32s %12.1f ns/run\n" name est)
    (List.sort compare !rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* The interpreter backends head-to-head: the same preprocessed Zr loop
   bodies (a 1-D stencil sweep and a CSR spmv, the two shapes NPB CG
   and the heat example lean on) executed by the tree walker and by the
   staged closure compiler.  Per-iteration cost is what matters — the
   loop body runs once per iteration of a worksharing loop — so results
   are reported in ns/iteration and also written to BENCH_interp.json
   for the perf trajectory across PRs.                                 *)

let stencil_src =
  {|
fn stencil(n: i64, a: []f64, b: []f64) f64 {
    var i: i64 = 1;
    //$omp parallel for shared(a, b)
    while (i < n - 1) : (i += 1) {
        b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
    }
    return b[1];
}
|}

let spmv_src =
  {|
fn spmv(nrows: i64, a: []f64, colidx: []i64, rowstr: []i64,
        x: []f64, y: []f64) f64 {
    var row: i64 = 0;
    //$omp parallel for shared(a, colidx, rowstr, x, y)
    while (row < nrows) : (row += 1) {
        var sum: f64 = 0.0;
        var k: i64 = rowstr[row];
        while (k < rowstr[row + 1]) : (k += 1) {
            sum += a[k] * x[colidx[k]];
        }
        y[row] = sum;
    }
    return y[0];
}
|}

let bench_interp () =
  print_endline
    "== interp: AST walker vs staged closure compiler (real execution, 1 \
     thread) ==";
  Zigomp.set_num_threads 1;
  let time_per_iter prog fname args ~iters ~reps =
    ignore (Zigomp.call prog fname args);  (* warm-up *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do ignore (Zigomp.call prog fname args) done;
    1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int (reps * iters)
  in
  let case ~name ~src ~fname ~args ~iters ~reps =
    let ast = Zigomp.compile ~backend:`Ast ~name:(name ^ ".zr") src in
    let compiled = Zigomp.compile ~backend:`Compiled ~name:(name ^ ".zr") src in
    let ast_ns = time_per_iter ast fname args ~iters ~reps in
    let compiled_ns = time_per_iter compiled fname args ~iters ~reps in
    let speedup = ast_ns /. compiled_ns in
    Printf.printf "  %-14s %10.1f ns/iter (ast) %10.1f ns/iter (compiled) %8.1fx\n%!"
      name ast_ns compiled_ns speedup;
    (name, iters, ast_ns, compiled_ns, speedup)
  in
  let n = 4_096 in
  let a = Array.init n (fun i -> float_of_int (i mod 7)) in
  let b = Array.make n 0. in
  let stencil_row =
    case ~name:"stencil_body" ~src:stencil_src ~fname:"stencil"
      ~args:[ Zigomp.Value.VInt n; Zigomp.Value.VFloatArr a;
              Zigomp.Value.VFloatArr b ]
      ~iters:(n - 2) ~reps:20
  in
  (* a small banded CSR matrix: 5 nonzeros per row *)
  let nrows = 1_024 in
  let band = 5 in
  let rowstr = Array.init (nrows + 1) (fun r -> r * band) in
  let colidx =
    Array.init (nrows * band) (fun k ->
        let r = k / band and d = k mod band in
        (r + d * 17) mod nrows)
  in
  let av = Array.init (nrows * band) (fun k -> float_of_int (k mod 3)) in
  let x = Array.init nrows (fun i -> float_of_int (i mod 5)) in
  let y = Array.make nrows 0. in
  let spmv_row =
    case ~name:"spmv_body" ~src:spmv_src ~fname:"spmv"
      ~args:[ Zigomp.Value.VInt nrows; Zigomp.Value.VFloatArr av;
              Zigomp.Value.VIntArr colidx; Zigomp.Value.VIntArr rowstr;
              Zigomp.Value.VFloatArr x; Zigomp.Value.VFloatArr y ]
      ~iters:(nrows * band) ~reps:20
  in
  let json_row (name, iters, ast_ns, compiled_ns, speedup) =
    Printf.sprintf
      {|    { "kernel": %S, "iters_per_call": %d, "ast_ns_per_iter": %.2f, "compiled_ns_per_iter": %.2f, "speedup": %.2f }|}
      name iters ast_ns compiled_ns speedup
  in
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"interp\",\n  \"unit\": \"ns/iteration\",\n  \
       \"results\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map json_row [ stencil_row; spmv_row ]))
  in
  let oc = open_out "BENCH_interp.json" in
  output_string oc json;
  close_out oc;
  print_endline "  wrote BENCH_interp.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* The third tier head-to-head: the same two loop bodies executed by
   all three backends, plus the guard-elision ablation (bytecode with
   the subscript-analysis elision disabled, so every array access runs
   the guarded twin).  Written to BENCH_bytecode.json for the perf
   trajectory and for CI's bytecode-not-slower-than-compiled gate.     *)

let bench_bytecode () =
  print_endline
    "== bytecode: register VM vs staged closures vs AST walker (real \
     execution, 1 thread) ==";
  Zigomp.set_num_threads 1;
  let time_per_iter prog fname args ~iters ~reps =
    ignore (Zigomp.call prog fname args);  (* warm-up, and specialise *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do ignore (Zigomp.call prog fname args) done;
    1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int (reps * iters)
  in
  let case ~name ~src ~fname ~args ~iters ~reps =
    let run backend ?elide () =
      let p = Zigomp.compile ~backend ?elide ~name:(name ^ ".zr") src in
      time_per_iter p fname args ~iters ~reps
    in
    let ast_ns = run `Ast () in
    let compiled_ns = run `Compiled () in
    let bc_ns = run `Bytecode ~elide:true () in
    let bc_guarded_ns = run `Bytecode ~elide:false () in
    Printf.printf
      "  %-14s %8.1f ns/iter (ast) %8.1f (compiled) %8.1f (bytecode) \
       %8.1f (bytecode, guards kept) %6.1fx vs compiled\n%!"
      name ast_ns compiled_ns bc_ns bc_guarded_ns (compiled_ns /. bc_ns);
    (name, iters, ast_ns, compiled_ns, bc_ns, bc_guarded_ns)
  in
  let n = 4_096 in
  let a = Array.init n (fun i -> float_of_int (i mod 7)) in
  let b = Array.make n 0. in
  let stencil_row =
    case ~name:"stencil_body" ~src:stencil_src ~fname:"stencil"
      ~args:[ Zigomp.Value.VInt n; Zigomp.Value.VFloatArr a;
              Zigomp.Value.VFloatArr b ]
      ~iters:(n - 2) ~reps:20
  in
  let nrows = 1_024 in
  let band = 5 in
  let rowstr = Array.init (nrows + 1) (fun r -> r * band) in
  let colidx =
    Array.init (nrows * band) (fun k ->
        let r = k / band and d = k mod band in
        (r + d * 17) mod nrows)
  in
  let av = Array.init (nrows * band) (fun k -> float_of_int (k mod 3)) in
  let x = Array.init nrows (fun i -> float_of_int (i mod 5)) in
  let y = Array.make nrows 0. in
  let spmv_row =
    case ~name:"spmv_body" ~src:spmv_src ~fname:"spmv"
      ~args:[ Zigomp.Value.VInt nrows; Zigomp.Value.VFloatArr av;
              Zigomp.Value.VIntArr colidx; Zigomp.Value.VIntArr rowstr;
              Zigomp.Value.VFloatArr x; Zigomp.Value.VFloatArr y ]
      ~iters:(nrows * band) ~reps:20
  in
  let json_row (name, iters, ast_ns, compiled_ns, bc_ns, bc_guarded_ns) =
    Printf.sprintf
      {|    { "kernel": %S, "iters_per_call": %d, "ast_ns_per_iter": %.2f, "compiled_ns_per_iter": %.2f, "bytecode_ns_per_iter": %.2f, "bytecode_guarded_ns_per_iter": %.2f, "speedup_vs_compiled": %.2f, "elision_gain": %.2f }|}
      name iters ast_ns compiled_ns bc_ns bc_guarded_ns
      (compiled_ns /. bc_ns) (bc_guarded_ns /. bc_ns)
  in
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"bytecode\",\n  \"unit\": \"ns/iteration\",\n  \
       \"results\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map json_row [ stencil_row; spmv_row ]))
  in
  let oc = open_out "BENCH_bytecode.json" in
  output_string oc json;
  close_out oc;
  print_endline "  wrote BENCH_bytecode.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Loop transformations: the measured effect of the source-to-source
   rewrites (tile, interchange, unroll, collapse) under the bytecode
   tier, and the roofline model's verdict on the tiling.
   BENCH_transform.json carries both, so CI can gate on the measured
   tiling speedup and on prediction/measurement sign agreement.        *)

let transform_stencil_src clause =
  Printf.sprintf
    {|
fn sweep(a: []f64, b: []f64, out: []f64) f64 {
    //$omp parallel shared(a, b, out)
    {
        var i: i64 = 0;
        //$omp for %s
        while (i < 1024) : (i += 1) {
            var j: i64 = 0;
            while (j < 1024) : (j += 1) {
                out[i * 1024 + j] = a[i * 1024 + j] + b[j * 1024 + i];
            }
        }
    }
    return out[0];
}
|}
    clause

let transform_colmajor_src clause =
  Printf.sprintf
    {|
fn sweep(src: []f64, out: []f64) f64 {
    //$omp parallel shared(src, out)
    {
        var i: i64 = 0;
        //$omp for %s
        while (i < 512) : (i += 1) {
            var j: i64 = 0;
            while (j < 512) : (j += 1) {
                out[j * 512 + i] = src[j * 512 + i] * 2.0;
            }
        }
    }
    return out[0];
}
|}
    clause

let transform_saxpy_src clause =
  Printf.sprintf
    {|
fn saxpy(x: []f64, y: []f64) f64 {
    //$omp parallel shared(x, y)
    {
        var i: i64 = 0;
        //$omp for %s
        while (i < 65536) : (i += 1) {
            y[i] = y[i] + 0.5 * x[i];
        }
    }
    return y[0];
}
|}
    clause

let transform_grid_src clause =
  Printf.sprintf
    {|
fn grid(hits: []i64) i64 {
    //$omp parallel shared(hits)
    {
        var i: i64 = 0;
        //$omp for %s
        while (i < 512) : (i += 1) {
            var j: i64 = 0;
            while (j < 512) : (j += 1) {
                hits[i * 512 + j] = hits[i * 512 + j] + i + j;
            }
        }
    }
    return hits[0];
}
|}
    clause

let bench_transform () =
  print_endline
    "== transform: tile/interchange/unroll/collapse rewrites under the \
     bytecode tier (real execution) ==";
  let time_per_iter prog fname args ~iters ~reps =
    ignore (Zigomp.call prog fname args);  (* warm-up, and specialise *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do ignore (Zigomp.call prog fname args) done;
    1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int (reps * iters)
  in
  let run_variant ~name ~src ~fname ~args ~iters ~reps =
    let p = Zigomp.compile ~backend:`Bytecode ~name:(name ^ ".zr") src in
    time_per_iter p fname args ~iters ~reps
  in
  (* tiled vs untiled transpose-add, 1 thread so the cache effect is
     not diluted across private slices; the roofline prediction is
     evaluated at the same active=1 *)
  Zigomp.set_num_threads 1;
  let n = 1024 in
  let a = Array.init (n * n) (fun t -> float_of_int (t mod 97)) in
  let b = Array.init (n * n) (fun t -> float_of_int (t mod 89)) in
  let out = Array.make (n * n) 0. in
  let stencil_args =
    [ Zigomp.Value.VFloatArr a; Zigomp.Value.VFloatArr b;
      Zigomp.Value.VFloatArr out ]
  in
  let untiled_ns =
    run_variant ~name:"stencil_untiled" ~src:(transform_stencil_src "")
      ~fname:"sweep" ~args:stencil_args ~iters:(n * n) ~reps:3
  in
  let tiled_ns =
    run_variant ~name:"stencil_tiled"
      ~src:(transform_stencil_src "tile(8, 8)") ~fname:"sweep"
      ~args:stencil_args ~iters:(n * n) ~reps:3
  in
  let measured = untiled_ns /. tiled_ns in
  let predicted =
    let src = transform_stencil_src "tile(8, 8)" in
    let ast, spans =
      Zigomp.Frontend.Parser.parse_string ~name:"stencil_tiled.zr" src
    in
    match
      Zigomp.Preprocessor.Transform.footprints
        { Zigomp.Preprocessor.Synth.ast; spans }
    with
    | [] -> 1.0
    | (fp : Zigomp.Preprocessor.Transform.footprint) :: _ ->
        let cost =
          Omp_model.Cost.make
            ~flops:(fp.fp_iters *. float_of_int fp.fp_accesses)
            ~bytes:fp.fp_bytes ()
        in
        (Sim.Perfmodel.predict_tiling Sim.Machine.archer2 ~active:1 ~cost
           ~ws_before:fp.fp_ws_before ~ws_after:fp.fp_ws_after)
          .Sim.Perfmodel.speedup
  in
  let sign_agrees =
    (* both sides within 2% of 1.0 also count as agreement: the model
       saying "no change" about a flat measurement is a correct call *)
    (predicted >= 1.0 && measured >= 0.98)
    || (predicted <= 1.0 && measured <= 1.02)
  in
  Printf.printf
    "  tile(8,8) transpose-add 1024^2: %8.1f ns/iter untiled %8.1f \
     tiled  measured %.2fx, predicted %.2fx (%s)\n%!"
    untiled_ns tiled_ns measured predicted
    (if sign_agrees then "signs agree" else "signs DISAGREE");
  (* interchange: column-major sweep made row-major *)
  let m = 512 in
  let src_arr = Array.init (m * m) (fun t -> float_of_int (t mod 31)) in
  let out2 = Array.make (m * m) 0. in
  let colmajor_args =
    [ Zigomp.Value.VFloatArr src_arr; Zigomp.Value.VFloatArr out2 ]
  in
  let colmajor_ns =
    run_variant ~name:"colmajor" ~src:(transform_colmajor_src "")
      ~fname:"sweep" ~args:colmajor_args ~iters:(m * m) ~reps:3
  in
  let interchanged_ns =
    run_variant ~name:"interchanged"
      ~src:(transform_colmajor_src "interchange") ~fname:"sweep"
      ~args:colmajor_args ~iters:(m * m) ~reps:3
  in
  Printf.printf
    "  interchange col-major 512^2:    %8.1f ns/iter original %8.1f \
     interchanged  %.2fx\n%!"
    colmajor_ns interchanged_ns (colmajor_ns /. interchanged_ns);
  (* unroll ablation on a streamed daxpy *)
  let x = Array.init 65536 (fun t -> float_of_int (t mod 7)) in
  let y = Array.make 65536 1.0 in
  let saxpy_args = [ Zigomp.Value.VFloatArr x; Zigomp.Value.VFloatArr y ] in
  let unroll_ns =
    List.map
      (fun f ->
        let clause = if f = 1 then "" else Printf.sprintf "unroll(%d)" f in
        ( f,
          run_variant
            ~name:(Printf.sprintf "saxpy_u%d" f)
            ~src:(transform_saxpy_src clause) ~fname:"saxpy"
            ~args:saxpy_args ~iters:65536 ~reps:10 ))
      [ 1; 2; 4; 8 ]
  in
  List.iter
    (fun (f, ns) ->
      Printf.printf "  unroll(%d) daxpy 64k:            %8.1f ns/iter\n%!"
        f ns)
    unroll_ns;
  (* collapse(2) vs worksharing only the outer loop, 4 threads *)
  Zigomp.set_num_threads 4;
  let hits = Array.make (m * m) 0 in
  let grid_args = [ Zigomp.Value.VIntArr hits ] in
  let nested_ns =
    run_variant ~name:"grid_nested" ~src:(transform_grid_src "")
      ~fname:"grid" ~args:grid_args ~iters:(m * m) ~reps:3
  in
  let collapse_ns =
    run_variant ~name:"grid_collapse"
      ~src:(transform_grid_src "collapse(2)") ~fname:"grid"
      ~args:grid_args ~iters:(m * m) ~reps:3
  in
  Printf.printf
    "  collapse(2) grid 512^2, 4 thr:  %8.1f ns/iter nested %8.1f \
     collapsed  %.2fx\n%!"
    nested_ns collapse_ns (nested_ns /. collapse_ns);
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"transform\",\n  \"unit\": \"ns/iteration\",\n  \
       \"results\": [\n\
      \    { \"kernel\": \"stencil_tile8x8\", \"untiled_ns_per_iter\": \
       %.2f, \"tiled_ns_per_iter\": %.2f, \"measured_speedup\": %.3f, \
       \"predicted_speedup\": %.3f, \"prediction_sign_agrees\": %b },\n\
      \    { \"kernel\": \"interchange_colmajor\", \
       \"original_ns_per_iter\": %.2f, \"interchanged_ns_per_iter\": \
       %.2f, \"speedup\": %.3f },\n\
      \    { \"kernel\": \"unroll_daxpy\", %s },\n\
      \    { \"kernel\": \"collapse2_grid\", \"nested_ns_per_iter\": \
       %.2f, \"collapsed_ns_per_iter\": %.2f, \"ratio\": %.3f }\n\
      \  ]\n}\n"
      untiled_ns tiled_ns measured predicted sign_agrees colmajor_ns
      interchanged_ns
      (colmajor_ns /. interchanged_ns)
      (String.concat ", "
         (List.map
            (fun (f, ns) ->
              Printf.sprintf "\"unroll%d_ns_per_iter\": %.2f" f ns)
            unroll_ns))
      nested_ns collapse_ns
      (nested_ns /. collapse_ns)
  in
  let oc = open_out "BENCH_transform.json" in
  output_string oc json;
  close_out oc;
  print_endline "  wrote BENCH_transform.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* The hot-team pool ablation: spawn-per-fork and pooled fork measured
   back-to-back in the same process, so the speedup is observable on
   any host without cross-run noise.  Empty region bodies isolate the
   fork/join machinery itself — exactly what `fork_join_4` in the micro
   section exercises, which routes through the pool by default.        *)

let bench_pool () =
  print_endline
    "== pool: spawn-per-fork vs hot-team pooled __kmpc_fork_call (real \
     execution) ==";
  let reps = 300 in
  let mean_fork_cost nt =
    (* one unmeasured fork absorbs pool/worker creation, so both modes
       are timed steady-state *)
    Omprt.Omp.parallel ~num_threads:nt (fun () -> ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      Omprt.Omp.parallel ~num_threads:nt (fun () -> ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  Printf.printf "  %-8s %18s %18s %10s\n" "threads" "spawn-per-fork"
    "pooled (hot team)" "speedup";
  List.iter
    (fun nt ->
      Omprt.Pool.set_enabled false;
      let spawn = mean_fork_cost nt in
      Omprt.Pool.set_enabled true;
      let pooled = mean_fork_cost nt in
      Printf.printf "  %-8d %15.1f us %15.1f us %9.1fx\n%!" nt
        (1e6 *. spawn) (1e6 *. pooled)
        (if pooled > 0. then spawn /. pooled else Float.infinity))
    [ 1; 2; 4; 8 ];
  print_string ("  " ^ Omprt.Profile.pool_report ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out, measured on the
   simulated node so that 128-thread behaviour is visible.             *)

let ablation_schedules () =
  print_endline
    "== ablation: loop schedule under imbalance (simulated, 128 threads) ==";
  print_endline
    "   triangular work: iteration i costs ~i flops; 10^5 iterations";
  let cost lo hi =
    let f = ref 0. in
    for i = lo to hi - 1 do f := !f +. (1e3 *. float_of_int i) done;
    Omp_model.Cost.flops !f
  in
  List.iter
    (fun sched ->
      let r =
        Simrt.run ~num_threads:128 (fun (module O : Omprt.Omp_intf.S) ->
            O.parallel (fun () ->
                O.ws_for ~sched ~chunk_cost:cost ~lo:0 ~hi:100_000
                  (fun _ _ -> ())))
      in
      Printf.printf "  %-16s makespan %10.4f s  (claims: %d)\n"
        (Omp_model.Sched.to_string sched)
        r.Simrt.makespan
        (r.Simrt.run_stats.static_chunks + r.Simrt.run_stats.dynamic_claims))
    [ Omp_model.Sched.Static None; Omp_model.Sched.Static (Some 64);
      Omp_model.Sched.Dynamic 64; Omp_model.Sched.Dynamic 512;
      Omp_model.Sched.Guided 64 ];
  print_newline ()

let ablation_barrier_scaling () =
  print_endline "== ablation: modelled barrier cost vs team size ==";
  List.iter
    (fun nt ->
      Printf.printf "  %4d threads: %7.3f us\n" nt
        (1e6 *. Sim.Perfmodel.barrier_time Sim.Machine.archer2 ~nthreads:nt))
    [ 2; 8; 32; 128 ];
  print_newline ()

let ablation_cache_knee () =
  print_endline
    "== ablation: the L3 capacity knee behind CG's super-linear tail ==";
  print_endline "   SpMV-like sweep, 461 MB matrix, varying team size:";
  let m = Sim.Machine.archer2 in
  List.iter
    (fun nt ->
      let miss = Sim.Perfmodel.miss_factor m ~active:nt 460.8e6 in
      Printf.printf
        "  %4d threads: %6.1f MB/thread slice, miss factor %.2f\n" nt
        (460.8 /. float_of_int nt)
        miss)
    [ 32; 64; 96; 128 ];
  print_newline ()

let ablation_gantt () =
  print_endline
    "== ablation: execution timelines, imbalanced loop on 8 simulated \
     threads ==";
  print_endline
    "   iteration i costs ~i work units; static leaves late threads \
     waiting ('='),\n   dynamic balances the tail:";
  let cost lo hi =
    let f = ref 0. in
    for i = lo to hi - 1 do f := !f +. (3e5 *. float_of_int i) done;
    Omp_model.Cost.flops !f
  in
  List.iter
    (fun sched ->
      let r =
        Simrt.run ~num_threads:8 ~trace:true
          (fun (module O : Omprt.Omp_intf.S) ->
            O.parallel (fun () ->
                O.ws_for ~sched ~chunk_cost:cost ~lo:0 ~hi:512
                  (fun _ _ -> ())))
      in
      Printf.printf "-- schedule(%s): makespan %.4f s\n"
        (Omp_model.Sched.to_string sched) r.Simrt.makespan;
      (match r.Simrt.trace with
       | Some tr -> print_string (Sim.Trace.gantt tr ~makespan:r.Simrt.makespan)
       | None -> ());
      print_newline ())
    [ Omp_model.Sched.Static None; Omp_model.Sched.Dynamic 16 ]

let ablation_reduction_paths () =
  print_endline
    "== ablation: reduction combine paths (real, 4 threads, 10^5 adds) ==";
  let trial name f =
    let t0 = Unix.gettimeofday () in
    f ();
    Printf.printf "  %-28s %8.4f s\n" name (Unix.gettimeofday () -. t0)
  in
  trial "atomic CAS-loop float add" (fun () ->
      let cell = Omprt.Atomics.Float.make 0. in
      Omprt.Omp.parallel ~num_threads:4 (fun () ->
          for _ = 1 to 25_000 do Omprt.Atomics.Float.add cell 1. done));
  trial "critical-section add" (fun () ->
      let cell = ref 0. in
      Omprt.Omp.parallel ~num_threads:4 (fun () ->
          for _ = 1 to 25_000 do
            Omprt.Lock.critical (fun () -> cell := !cell +. 1.)
          done));
  trial "thread-local + one combine" (fun () ->
      let cell = Omprt.Atomics.Float.make 0. in
      Omprt.Omp.parallel ~num_threads:4 (fun () ->
          let local = ref 0. in
          for _ = 1 to 25_000 do local := !local +. 1. done;
          Omprt.Atomics.Float.add cell !local));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Sensitivity: how robust are the headline shapes to the calibrated
   machine constants?  Each parameter is perturbed +/-25% and the mean
   deviation from the paper's table recomputed — large swings would
   mean the reproduction rests on a fitted knife edge.                 *)

let sensitivity () =
  print_endline
    "== sensitivity: paper-table deviation under +/-25% machine-constant \
     perturbation ==";
  let deviation machine kernel =
    let pt =
      match kernel with
      | Harness.Experiment.CG -> Harness.Paper.table1
      | Harness.Experiment.EP -> Harness.Paper.table2
      | Harness.Experiment.IS -> Harness.Paper.table3
    in
    let lang =
      Harness.Experiment.lang_of_name (fst pt.Harness.Paper.langs)
    in
    let model =
      List.map
        (fun nt ->
          Harness.Experiment.sim_time ~machine kernel lang ~nthreads:nt)
        pt.Harness.Paper.threads
    in
    Harness.Stats.mean_abs_rel_err
      (List.combine pt.Harness.Paper.ported model)
  in
  let base = Sim.Machine.archer2 in
  let variants =
    [ ("baseline", base);
      ("l3_hit_miss -25%",
       { base with Sim.Machine.l3_hit_miss = base.Sim.Machine.l3_hit_miss *. 0.75 });
      ("l3_hit_miss +25%",
       { base with Sim.Machine.l3_hit_miss =
           Float.min 1.0 (base.Sim.Machine.l3_hit_miss *. 1.25) });
      ("ccx_mem_bw -25%",
       { base with Sim.Machine.ccx_mem_bw = base.Sim.Machine.ccx_mem_bw *. 0.75 });
      ("ccx_mem_bw +25%",
       { base with Sim.Machine.ccx_mem_bw = base.Sim.Machine.ccx_mem_bw *. 1.25 });
      ("gather_node_bw -25%",
       { base with Sim.Machine.gather_node_bw =
           base.Sim.Machine.gather_node_bw *. 0.75 });
      ("gather_node_bw +25%",
       { base with Sim.Machine.gather_node_bw =
           base.Sim.Machine.gather_node_bw *. 1.25 });
    ]
  in
  Printf.printf "  %-22s %10s %10s %10s\n" "machine variant" "CG dev"
    "EP dev" "IS dev";
  List.iter
    (fun (name, machine) ->
      Printf.printf "  %-22s %9.1f%% %9.1f%% %9.1f%%\n%!" name
        (100. *. deviation machine Harness.Experiment.CG)
        (100. *. deviation machine Harness.Experiment.EP)
        (100. *. deviation machine Harness.Experiment.IS))
    variants;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Deferred tasking: the same stencil body run as a taskloop (tasks of
   [grainsize] consecutive iterations, rooted in a single) and as the
   static worksharing loop, and recursive task fib against its serial
   twin.  Written to BENCH_tasking.json for the perf trajectory across
   PRs; no gate — task overhead vs static partitioning is the quantity
   being tracked, not bounded.                                         *)

let taskloop_sweep_src =
  {|
fn sweep(n: i64, a: []f64, b: []f64) f64 {
    //$omp parallel shared(a, b)
    {
        //$omp single
        {
            var i: i64 = 1;
            //$omp taskloop grainsize(256)
            while (i < n - 1) : (i += 1) {
                b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
            }
        }
    }
    return b[1];
}
|}

let staticfor_sweep_src =
  {|
fn sweep(n: i64, a: []f64, b: []f64) f64 {
    var i: i64 = 1;
    //$omp parallel for shared(a, b)
    while (i < n - 1) : (i += 1) {
        b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
    }
    return b[1];
}
|}

let task_fib_src =
  {|
fn fib(n: i64) i64 {
    if (n < 2) { return n; }
    var a: i64 = 0;
    var b: i64 = 0;
    //$omp task shared(a) firstprivate(n)
    { a = fib(n - 1); }
    //$omp task shared(b) firstprivate(n)
    { b = fib(n - 2); }
    //$omp taskwait
    return a + b;
}

fn fibmain(n: i64) i64 {
    var r: i64 = 0;
    //$omp parallel
    {
        //$omp single
        { r = fib(n); }
    }
    return r;
}
|}

let serial_fib_src =
  {|
fn fib(n: i64) i64 {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}

fn fibmain(n: i64) i64 {
    return fib(n);
}
|}

let bench_tasking () =
  print_endline
    "== tasking: taskloop vs static for; task fib vs serial (4 threads) ==";
  Zigomp.set_num_threads 4;
  let time prog fname args ~reps =
    ignore (Zigomp.call prog fname args);  (* warm-up *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do ignore (Zigomp.call prog fname args) done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let n = 65_536 in
  let a = Array.init n (fun i -> float_of_int (i mod 7)) in
  let b = Array.make n 0. in
  let sweep_args =
    [ Zigomp.Value.VInt n; Zigomp.Value.VFloatArr a;
      Zigomp.Value.VFloatArr b ]
  in
  let per_iter s = 1e9 *. s /. float_of_int (n - 2) in
  let tl_prog = Zigomp.compile ~name:"taskloop_sweep.zr" taskloop_sweep_src in
  let st_prog = Zigomp.compile ~name:"staticfor_sweep.zr" staticfor_sweep_src in
  let tl_ns = per_iter (time tl_prog "sweep" sweep_args ~reps:10) in
  let st_ns = per_iter (time st_prog "sweep" sweep_args ~reps:10) in
  Printf.printf
    "  %-14s %10.1f ns/iter (taskloop g=256) %10.1f ns/iter (static for) \
     %6.2fx overhead\n%!"
    "stencil_sweep" tl_ns st_ns (tl_ns /. st_ns);
  let fib_n = 18 in
  let fib_args = [ Zigomp.Value.VInt fib_n ] in
  let tfib_prog = Zigomp.compile ~name:"task_fib.zr" task_fib_src in
  let sfib_prog = Zigomp.compile ~name:"serial_fib.zr" serial_fib_src in
  (* correctness before timing: both must agree *)
  let tv = Zigomp.call tfib_prog "fibmain" fib_args in
  let sv = Zigomp.call sfib_prog "fibmain" fib_args in
  if tv <> sv then failwith "bench tasking: task fib diverged from serial";
  let tfib_ms = 1e3 *. time tfib_prog "fibmain" fib_args ~reps:5 in
  let sfib_ms = 1e3 *. time sfib_prog "fibmain" fib_args ~reps:5 in
  Printf.printf
    "  %-14s %10.2f ms/call (task) %10.2f ms/call (serial) %6.2fx \
     overhead\n%!"
    (Printf.sprintf "fib_%d" fib_n)
    tfib_ms sfib_ms (tfib_ms /. sfib_ms);
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"tasking\",\n  \"threads\": 4,\n  \"results\": [\n\
      \    { \"case\": \"stencil_sweep\", \"taskloop_ns_per_iter\": %.2f, \
       \"static_ns_per_iter\": %.2f, \"overhead_ratio\": %.3f },\n\
      \    { \"case\": \"fib_%d\", \"task_ms_per_call\": %.3f, \
       \"serial_ms_per_call\": %.3f, \"overhead_ratio\": %.3f }\n  ]\n}\n"
      tl_ns st_ns (tl_ns /. st_ns) fib_n tfib_ms sfib_ms
      (tfib_ms /. sfib_ms)
  in
  let oc = open_out "BENCH_tasking.json" in
  output_string oc json;
  close_out oc;
  print_endline "  wrote BENCH_tasking.json";
  print_newline ()

(* ------------------------------------------------------------------ *)

let sections =
  [ ("table1", fun () -> emit_table Harness.Experiment.CG);
    ("table2", fun () -> emit_table Harness.Experiment.EP);
    ("table3", fun () -> emit_table Harness.Experiment.IS);
    ("fig3", fun () -> emit_figure Harness.Experiment.CG);
    ("fig4", fun () -> emit_figure Harness.Experiment.EP);
    ("fig5", fun () -> emit_figure Harness.Experiment.IS);
    ("micro", run_micro);
    ("interp", bench_interp);
    ("bytecode", bench_bytecode);
    ("transform", bench_transform);
    ("tasking", bench_tasking);
    ("pool", bench_pool);
    ("sensitivity", sensitivity);
    ("ablation",
     fun () ->
       ablation_schedules ();
       ablation_barrier_scaling ();
       ablation_cache_knee ();
       ablation_gantt ();
       ablation_reduction_paths ());
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let chosen =
    if args = [] then List.map fst sections
    else begin
      List.iter
        (fun a ->
          if not (List.mem_assoc a sections) then begin
            Printf.eprintf
              "unknown section %S; available: %s\n" a
              (String.concat ", " (List.map fst sections));
            exit 2
          end)
        args;
      args
    end
  in
  List.iter (fun name -> (List.assoc name sections) ()) chosen

(* Differential property for the tasking constructs: randomly composed
   programs over task/taskwait, taskloop(grainsize), sections and
   single copyprivate are executed by all three tiers — the tree walker
   ([Interp.call]), the closure compiler ([Interp.Compile.call]) and
   the bytecode tier ([Interp.Compile.compile ~bc]) — at 1 and 4
   threads, and must agree with each other and with the model answer
   computed in OCaml.  Mirrors the harness of test_compile.ml. *)

module V = Interp.Value
module G = QCheck2.Gen

(* Each segment is one construct instance inside the parallel region.
   All segments are race-free by construction (task targets are
   disjoint cells, taskloops are rooted in a single, sections write
   distinct cells, broadcasts land in a private), so every tier must
   produce the same checksum. *)
type seg =
  | Tasks of int * int     (* k tasks incrementing cells 0..k-1 by c *)
  | Taskloop of int * int  (* grainsize g, every cell += c *)
  | Sections of int list   (* per-section increment of cell j *)
  | Broadcast of int       (* single copyprivate; every member adds c *)

let cells = 16

let render_seg i = function
  | Tasks (k, c) ->
      Printf.sprintf
        {|    //$omp single
    {
        var t%d: i64 = 0;
        while (t%d < %d) : (t%d += 1) {
            //$omp task shared(x) firstprivate(t%d)
            { x[t%d] = x[t%d] + %d; }
        }
        //$omp taskwait
    }|}
        i i k i i i i c
  | Taskloop (g, c) ->
      Printf.sprintf
        {|    //$omp single
    {
        var i%d: i64 = 0;
        //$omp taskloop grainsize(%d)
        while (i%d < n) : (i%d += 1) {
            x[i%d] = x[i%d] + %d;
        }
    }|}
        i g i i i i c
  | Sections cs ->
      let body =
        String.concat "\n"
          (List.mapi
             (fun j c ->
               Printf.sprintf
                 "        //$omp section\n        { x[%d] = x[%d] + %d; }"
                 j j c)
             cs)
      in
      Printf.sprintf "    //$omp sections\n    {\n%s\n    }" body
  | Broadcast c ->
      Printf.sprintf
        {|    //$omp single copyprivate(bc)
    { bc = %d; }
    //$omp critical
    { total = total + bc; }|}
        c

let render segs =
  String.concat "\n"
    ([ "fn f(n: i64, x: []i64) i64 {";
       "    var total: i64 = 0;";
       "    //$omp parallel shared(x, total)";
       "    {";
       "    var bc: i64 = 0;" ]
    @ List.mapi render_seg segs
    @ [ "    }";
        "    var s: i64 = 0;";
        "    var i: i64 = 0;";
        "    while (i < n) : (i += 1) { s += x[i]; }";
        "    return s + total;";
        "}" ])

(* The model answer, segment by segment. *)
let expected ~nt segs =
  let x = Array.make cells 0 in
  let total = ref 0 in
  List.iter
    (function
      | Tasks (k, c) ->
          for j = 0 to k - 1 do
            x.(j) <- x.(j) + c
          done
      | Taskloop (_, c) ->
          Array.iteri (fun j v -> x.(j) <- v + c) x
      | Sections cs -> List.iteri (fun j c -> x.(j) <- x.(j) + c) cs
      | Broadcast c -> total := !total + (nt * c))
    segs;
  Array.fold_left ( + ) !total x

let seg_gen =
  let inc = G.int_range 1 9 in
  G.oneof
    [ G.map2 (fun k c -> Tasks (k, c)) (G.int_range 1 cells) inc;
      G.map2 (fun g c -> Taskloop (g, c)) (G.int_range 1 8) inc;
      G.map (fun cs -> Sections cs)
        (G.list_size (G.int_range 2 3) inc);
      G.map (fun c -> Broadcast c) inc ]

let case_gen =
  let open G in
  let* segs = list_size (int_range 1 3) seg_gen in
  let* nt = oneofl [ 1; 4 ] in
  return (segs, nt)

(* All three tiers on a fresh array each. *)
let run_tiers src =
  let args () = [ V.VInt cells; V.VIntArr (Array.make cells 0) ] in
  let p = Interp.load ~name:"taskdiff.zr" src in
  let walker =
    try Ok (Interp.call p "f" (args ()))
    with e -> Error (Printexc.to_string e)
  in
  let compiled =
    try
      let cc = Interp.Compile.compile p in
      Ok (Interp.Compile.call cc "f" (args ()))
    with e -> Error (Printexc.to_string e)
  in
  let bytecode =
    try
      let cc = Interp.Compile.compile ~bc:{ Interp.Bcgen.elide = true } p in
      Ok (Interp.Compile.call cc "f" (args ()))
    with e -> Error (Printexc.to_string e)
  in
  (walker, compiled, bytecode)

let prop_tasking_tiers =
  QCheck2.Test.make
    ~name:"random tasking programs: walker = compiled = bytecode = model"
    ~count:40
    ~print:(fun (segs, nt) ->
      Printf.sprintf "threads=%d expected=%d\n%s" nt
        (expected ~nt segs) (render segs))
    case_gen
    (fun (segs, nt) ->
      Omprt.Api.set_num_threads nt;
      let walker, compiled, bytecode = run_tiers (render segs) in
      let want = Ok (V.VInt (expected ~nt segs)) in
      walker = want && compiled = want && bytecode = want)

let suite = [ QCheck_alcotest.to_alcotest prop_tasking_tiers ]

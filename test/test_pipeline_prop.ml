(* Property tests over the whole pipeline: randomly generated pragma
   programs are preprocessed, executed on a real team, and compared
   against a sequential OCaml model.  Values are chosen so that
   floating-point results are exact regardless of combination order
   (small integers for sums, powers of two for products), making the
   comparison bit-precise. *)

module V = Interp.Value

let schedules =
  [ ""; "schedule(static)"; "schedule(static, 3)"; "schedule(static, 7)";
    "schedule(dynamic, 1)"; "schedule(dynamic, 5)"; "schedule(guided, 2)";
    "schedule(runtime)"; "schedule(auto)" ]

let sched_gen = QCheck2.Gen.oneofl schedules

(* exact-float value pools *)
let add_val_gen = QCheck2.Gen.map float_of_int (QCheck2.Gen.int_range (-8) 8)
let mul_val_gen = QCheck2.Gen.oneofl [ 0.5; 1.0; 2.0 ]

let program ~op ~sched = Printf.sprintf {|
fn reduce(n: i64, x: []f64) f64 {
    var acc: f64 = %s;
    var i: i64 = 0;
    //$omp parallel for reduction(%s: acc) shared(x) %s
    while (i < n) : (i += 1) {
        acc %s= x[i];
    }
    return acc;
}
|} (match op with `Add -> "0.0" | `Mul -> "1.0")
   (match op with `Add -> "+" | `Mul -> "*")
   sched
   (match op with `Add -> "+" | `Mul -> "*")

let run_one ~op ~sched ~threads (values : float list) =
  Omprt.Api.set_num_threads threads;
  let p = Interp.load ~name:"prop.zr" (program ~op ~sched) in
  let x = Array.of_list values in
  match
    Interp.call p "reduce" [ V.VInt (Array.length x); V.VFloatArr x ]
  with
  | V.VFloat f -> f
  | v -> failwith ("unexpected " ^ V.to_string v)

let case_gen ~op value_gen =
  QCheck2.Gen.(
    let* sched = sched_gen in
    let* threads = int_range 1 4 in
    let* values = list_size (int_range 0 40) value_gen in
    return (op, sched, threads, values))

let fold ~op values =
  match op with
  | `Add -> List.fold_left ( +. ) 0. values
  | `Mul -> List.fold_left ( *. ) 1. values

let prop_of ~name ~op value_gen =
  QCheck2.Test.make ~name ~count:40 (case_gen ~op value_gen)
    (fun (op, sched, threads, values) ->
      run_one ~op ~sched ~threads values = fold ~op values)

let prop_sum =
  prop_of ~name:"random + reduction = OCaml fold (any schedule/team)"
    ~op:`Add add_val_gen

let prop_product =
  prop_of
    ~name:"random * reduction = OCaml fold (CAS-loop path, any schedule)"
    ~op:`Mul mul_val_gen

(* clause-combination robustness: every combination of data-sharing
   clauses on a two-loop region must preprocess to parseable output *)
let clause_gen =
  QCheck2.Gen.(
    let* priv = bool in
    let* fp = bool in
    let* sh = bool in
    let* nowait1 = bool in
    let* dflt = oneofl [ ""; "default(shared)" ] in
    let* sched = sched_gen in
    return (priv, fp, sh, nowait1, dflt, sched))

let prop_clause_combinations =
  QCheck2.Test.make ~name:"random clause combinations preprocess cleanly"
    ~count:60 clause_gen
    (fun (priv, fp, sh, nowait1, dflt, sched) ->
      let clauses =
        String.concat " "
          [ (if priv then "private(t)" else "");
            (if fp then "firstprivate(n)" else "");
            (if sh then "shared(x)" else "");
            dflt ]
      in
      let src = Printf.sprintf {|
fn f(n: i64, x: []f64) f64 {
    var s: f64 = 0.0;
    //$omp parallel reduction(+: s) %s
    {
        var t = 0.0;
        var i: i64 = 0;
        //$omp for %s %s
        while (i < n) : (i += 1) {
            t = x[i];
            s += t;
        }
        var j: i64 = 0;
        //$omp for %s
        while (j < n) : (j += 1) {
            s += 1.0;
        }
    }
    return s;
}
|} clauses sched (if nowait1 then "nowait" else "") sched
      in
      let out, _ast = Preproc.Preprocess.run_checked ~name:"rand.zr" src in
      String.length out > 0)

(* the preprocessor is a fixpoint: its output contains no executable
   pragmas (only threadprivate survives, and the loader consumes it),
   so preprocessing a second time must change nothing *)
let random_program_gen =
  QCheck2.Gen.(
    let* op = oneofl [ `Add; `Mul ] in
    let* sched = sched_gen in
    let* two_loops = bool in
    return
      (if two_loops then
         Printf.sprintf {|
fn f(n: i64, x: []f64) f64 {
    var s: f64 = 0.0;
    //$omp parallel reduction(+: s) shared(x) firstprivate(n)
    {
        var i: i64 = 0;
        //$omp for nowait %s
        while (i < n) : (i += 1) {
            s += x[i];
        }
        //$omp barrier
        var j: i64 = 0;
        //$omp for
        while (j < n) : (j += 1) {
            s += 1.0;
        }
    }
    return s;
}
|} sched
       else program ~op ~sched))

let prop_preprocess_idempotent =
  QCheck2.Test.make ~name:"preprocessing is idempotent (fixpoint)"
    ~count:40 random_program_gen
    (fun src ->
      let once = Preproc.Preprocess.run ~name:"fix.zr" src in
      let twice = Preproc.Preprocess.run ~name:"fix.zr" once in
      String.equal once twice)

(* the offset adjustment of the paper's Listing 5: applying byte-range
   replacements must leave every untouched region byte-identical, each
   replacement text landing at its start offset shifted by the
   accumulated length delta of the replacements before it *)
let replacements_gen =
  QCheck2.Gen.(
    let* base =
      string_size ~gen:(char_range 'a' 'z') (int_range 0 120)
    in
    let n = String.length base in
    let* cuts = list_size (int_range 0 8) (int_range 0 n) in
    let cuts = List.sort_uniq compare cuts in
    (* consecutive cut points become disjoint [start, stop) ranges *)
    let rec pair = function
      | a :: b :: rest -> (a, b) :: pair rest
      | _ -> []
    in
    let* texts =
      flatten_l
        (List.map
           (fun (start, stop) ->
             let* text =
               string_size ~gen:(char_range 'A' 'Z') (int_range 0 6)
             in
             return { Preproc.Synth.start; stop; text })
           (pair cuts))
    in
    return (base, texts))

let prop_untouched_regions =
  QCheck2.Test.make
    ~name:"replacements shift offsets but never edit untouched bytes"
    ~count:100 replacements_gen
    (fun (base, rs) ->
      let out = Preproc.Synth.apply_replacements base rs in
      let delta = ref 0 in
      let cursor = ref 0 in
      let ok = ref true in
      let check_equal a_off b_off len =
        if len > 0 && String.sub base a_off len <> String.sub out b_off len
        then ok := false
      in
      List.iter
        (fun { Preproc.Synth.start; stop; text } ->
          (* untouched gap before this replacement *)
          check_equal !cursor (!cursor + !delta) (start - !cursor);
          (* the replacement text sits at the adjusted offset *)
          if String.sub out (start + !delta) (String.length text) <> text
          then ok := false;
          delta := !delta + String.length text - (stop - start);
          cursor := stop)
        rs;
      check_equal !cursor (!cursor + !delta) (String.length base - !cursor);
      !ok
      && String.length out
         = String.length base + !delta)

let suite =
  [ QCheck_alcotest.to_alcotest prop_sum;
    QCheck_alcotest.to_alcotest prop_product;
    QCheck_alcotest.to_alcotest prop_clause_combinations;
    QCheck_alcotest.to_alcotest prop_preprocess_idempotent;
    QCheck_alcotest.to_alcotest prop_untouched_regions;
  ]

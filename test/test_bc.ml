(* The register-bytecode tier ([Interp.Bc]/[Bcgen]/[Bcexec]):

   - ZIGOMP_BACKEND / ZIGOMP_BC_ELIDE parsing, and the warn-once
     fall-back for unrecognised values (the PR-4 ICV treatment instead
     of a hard failure);
   - differential qcheck: randomly generated worksharing programs,
     restricted to the planner's covered construct set, executed by
     all three tiers — tree walker, staged closures, bytecode — must
     agree on results, raised errors and per-construct profile counts,
     and must actually enter the VM (never silently bail);
   - out-of-bounds error parity on one deterministic schedule;
   - disassembly goldens: the stencil body listing (opcodes, fused
     superinstructions, [unguarded] markers) and the register
     allocation of the NPB CG loop bodies;
   - the NPB EP/IS bodies pinned as bailouts (their loop bodies call
     host functions, which the planner must refuse);
   - the standalone examples under compiled vs bytecode. *)

module V = Interp.Value
module G = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* Backend environment parsing (satellite of the bytecode PR).         *)

let backend_t =
  Alcotest.testable
    (fun ppf b ->
      Format.pp_print_string ppf
        (match b with
         | `Ast -> "ast"
         | `Compiled -> "compiled"
         | `Bytecode -> "bytecode"))
    ( = )

let test_parse_backend () =
  let check s exp =
    Alcotest.(check (option backend_t)) s exp (Zigomp.parse_backend s)
  in
  check "bytecode" (Some `Bytecode);
  check "BC" (Some `Bytecode);
  check " vm " (Some `Bytecode);
  check "compiled" (Some `Compiled);
  check "Closure" (Some `Compiled);
  check "staged" (Some `Compiled);
  check "ast" (Some `Ast);
  check "tree" (Some `Ast);
  check "walk" (Some `Ast);
  check "" None;
  check "bytecodes" None;
  check "fast" None;
  Alcotest.(check (option bool)) "elide on" (Some true)
    (Zigomp.parse_bc_elide "1");
  Alcotest.(check (option bool)) "elide off" (Some false)
    (Zigomp.parse_bc_elide "off");
  Alcotest.(check (option bool)) "elide junk" None
    (Zigomp.parse_bc_elide "sometimes")

(* An unrecognised ZIGOMP_BACKEND warns once and falls back to the
   compiled backend, exactly like a malformed OMP_* ICV. *)
let test_backend_warn_once () =
  let with_env pairs f =
    let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
    List.iter (fun (k, v) -> Unix.putenv k v) pairs;
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun (k, old) -> Unix.putenv k (Option.value old ~default:""))
          saved;
        Omprt.Icv.forget_warnings ())
      f
  in
  with_env [ ("ZIGOMP_BACKEND", "turbo"); ("ZIGOMP_WARNINGS", "0") ]
    (fun () ->
      Omprt.Icv.forget_warnings ();
      let n0 = Omprt.Icv.warning_count () in
      Alcotest.(check backend_t) "falls back to compiled" `Compiled
        (Zigomp.default_backend ());
      Alcotest.(check int) "one warning" (n0 + 1)
        (Omprt.Icv.warning_count ());
      Alcotest.(check backend_t) "still compiled" `Compiled
        (Zigomp.default_backend ());
      Alcotest.(check int) "warned only once" (n0 + 1)
        (Omprt.Icv.warning_count ()));
  with_env [ ("ZIGOMP_BACKEND", "bytecode") ] (fun () ->
      Alcotest.(check backend_t) "well-formed value honoured" `Bytecode
        (Zigomp.default_backend ()))

(* ------------------------------------------------------------------ *)
(* Random covered programs.  The function shape:

     fn f(n, x: []f64, ix: []i64, w: []f64, iw: []i64) f64

   with x/ix read-only (ix entries always in [0, n)), w/iw written
   only at subscript [i], a + reduction into acc, and a serial
   checksum of w/iw after the region so every store is observable in
   the returned value.  Subscripts stay in [0, n) by construction
   (the loop runs over [1, n-1) and offsets are ±1), so the only
   nondeterminism left is reduction order — fixed by restricting
   dynamic/guided/runtime schedules to one thread, and float-typed
   reductions likewise (see [program_gen]).                           *)

type env = {
  flocals : string list;
  ilocals : string list;   (* readable int locals, incl. loop counters *)
  iassign : string list;   (* assignable int locals: counters excluded,
                              else a generated [tk = 0] in a loop body
                              would never terminate *)
  fresh : int;
}

let sub_gen =
  G.oneofl [ "i"; "i - 1"; "i + 1"; "ix[i]" ]

let rec iexpr env depth =
  let leaf =
    G.oneof
      ([ G.map string_of_int (G.int_range (-9) 9);
         G.return "i";
         G.map (Printf.sprintf "ix[%s]") sub_gen;
         G.map (Printf.sprintf "int_of(x[%s])") sub_gen ]
      @ (if env.ilocals = [] then [] else [ G.oneofl env.ilocals ]))
  in
  if depth <= 0 then leaf
  else
    let sub = iexpr env (depth - 1) in
    G.oneof
      [ leaf;
        G.map2 (Printf.sprintf "(%s + %s)") sub sub;
        G.map2 (Printf.sprintf "(%s - %s)") sub sub;
        G.map2 (Printf.sprintf "(%s * %s)") sub sub;
        G.map2 (fun e k -> Printf.sprintf "(%s / %d)" e k) sub
          (G.int_range 2 7);
        G.map2 (fun e k -> Printf.sprintf "(%s %% %d)" e k) sub
          (G.int_range 2 7);
      ]

let rec fexpr env depth =
  let leaf =
    G.oneof
      ([ G.oneofl [ "0.5"; "1.0"; "2.0"; "3.0"; "0.25" ];
         G.map (Printf.sprintf "x[%s]") sub_gen;
         G.return "w[i]";
         G.map (Printf.sprintf "float_of(%s)") (iexpr env 0) ]
      @ (if env.flocals = [] then [] else [ G.oneofl env.flocals ]))
  in
  if depth <= 0 then leaf
  else
    let sub = fexpr env (depth - 1) in
    G.oneof
      [ leaf;
        G.map2 (Printf.sprintf "(%s + %s)") sub sub;
        G.map2 (Printf.sprintf "(%s - %s)") sub sub;
        G.map2 (Printf.sprintf "(%s * %s)") sub sub;
        G.map (Printf.sprintf "(%s / 2.0)") sub;
        G.map (Printf.sprintf "sqrt(fabs(%s))") sub;
        G.map (Printf.sprintf "floor(%s)") sub;
      ]

let cond_gen env depth =
  let cmp =
    G.oneof
      [ G.map3
          (fun l op r -> Printf.sprintf "%s %s %s" l op r)
          (fexpr env 1)
          (G.oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ])
          (fexpr env 1);
        G.map3
          (fun l op r -> Printf.sprintf "%s %s %s" l op r)
          (iexpr env 1)
          (G.oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ])
          (iexpr env 1) ]
  in
  if depth <= 0 then cmp
  else
    G.oneof
      [ cmp;
        G.map2 (Printf.sprintf "(%s and %s)") cmp cmp;
        G.map2 (Printf.sprintf "(%s or %s)") cmp cmp;
        G.map (Printf.sprintf "!(%s)") cmp ]

let indent lines = List.map (fun l -> "        " ^ l) lines

(* One statement; declarations use fresh names only, so every use is
   after its (initialised) declaration on every tier. *)
let rec stmt_gen env depth : (string list * env) G.t =
  let open G in
  let store =
    [ (let* arr = oneofl [ `W; `Iw ] in
       let* op = oneofl [ "="; "+="; "-="; "*="; "/=" ] in
       match arr with
       | `W ->
           let* e = fexpr env 2 in
           return ([ Printf.sprintf "w[i] %s %s;" op e ], env)
       | `Iw ->
           let* e = iexpr env 2 in
           return ([ Printf.sprintf "iw[i] %s %s;" op e ], env)) ]
  in
  let decl =
    [ (let* kind = oneofl [ `F; `I ] in
       let name = Printf.sprintf "t%d" env.fresh in
       match kind with
       | `F ->
           let* e = fexpr env 2 in
           return
             ( [ Printf.sprintf "var %s: f64 = %s;" name e ],
               { env with flocals = name :: env.flocals;
                 fresh = env.fresh + 1 } )
       | `I ->
           let* e = iexpr env 2 in
           return
             ( [ Printf.sprintf "var %s: i64 = %s;" name e ],
               { env with ilocals = name :: env.ilocals;
                 iassign = name :: env.iassign;
                 fresh = env.fresh + 1 } )) ]
  in
  let local_assign =
    (if env.flocals = [] then []
     else
       [ (let* v = oneofl env.flocals in
          let* op = oneofl [ "="; "+="; "-="; "*=" ] in
          let* e = fexpr env 2 in
          return ([ Printf.sprintf "%s %s %s;" v op e ], env)) ])
    @
    if env.iassign = [] then []
    else
      [ (let* v = oneofl env.iassign in
         let* op = oneofl [ "="; "+="; "-="; "*=" ] in
         let* e = iexpr env 2 in
         return ([ Printf.sprintf "%s %s %s;" v op e ], env)) ]
  in
  let if_stmt =
    if depth <= 0 then []
    else
      [ (let* c = cond_gen env 1 in
         let* then_lines, tenv = stmts_gen env (depth - 1) in
         let* has_else = bool in
         let* else_lines, eenv =
           if has_else then stmts_gen { env with fresh = tenv.fresh } (depth - 1)
           else return ([], tenv)
         in
         return
           ( (Printf.sprintf "if (%s) {" c :: indent then_lines)
             @ (if has_else then ("} else {" :: indent else_lines) else [])
             @ [ "}" ],
             (* branch-local declarations go out of scope, but their
                names stay burnt so later siblings never redeclare *)
             { env with fresh = eenv.fresh } )) ]
  in
  let while_stmt =
    if depth <= 0 then []
    else
      [ (let name = Printf.sprintf "t%d" env.fresh in
         (* counter readable but not assignable inside the body *)
         let env' =
           { env with ilocals = name :: env.ilocals; fresh = env.fresh + 1 }
         in
         let* bound = int_range 2 4 in
         let* body_lines, benv = stmts_gen env' (depth - 1) in
         let* brk = bool in
         let body_lines =
           if brk then
             body_lines
             @ [ Printf.sprintf "if (%s > 2) { break; }" name ]
           else body_lines
         in
         return
           ( [ Printf.sprintf "var %s: i64 = 0;" name;
               Printf.sprintf "while (%s < %d) : (%s += 1) {" name bound
                 name ]
             @ indent body_lines @ [ "}" ],
             (* the counter survives the loop; body locals do not, but
                their names stay burnt *)
             { env' with fresh = benv.fresh } )) ]
  in
  let continue_stmt =
    if depth <= 0 then []
    else
      [ (let* c = cond_gen env 0 in
         return ([ Printf.sprintf "if (%s) { continue; }" c ], env)) ]
  in
  oneof
    (store @ store @ decl @ local_assign @ if_stmt @ while_stmt
     @ continue_stmt)

and stmts_gen env depth : (string list * env) G.t =
  let open G in
  let* count = int_range 1 3 in
  let rec go env k acc =
    if k = 0 then return (List.concat (List.rev acc), env)
    else
      let* lines, env = stmt_gen env depth in
      go env (k - 1) (lines :: acc)
  in
  go env count []

(* (schedule clause, allowed thread counts): non-static claim orders
   are racy, so those schedules run on one thread where the reduction
   order is total anyway. *)
let sched_gen =
  G.oneof
    [ G.map (fun t -> ("", t)) (G.int_range 1 4);
      G.map (fun t -> ("schedule(static)", t)) (G.int_range 1 4);
      G.map (fun t -> ("schedule(static, 3)", t)) (G.int_range 1 4);
      G.return ("schedule(dynamic, 2)", 1);
      G.return ("schedule(guided, 2)", 1);
      G.return ("schedule(runtime)", 1) ]

let program_gen =
  let open G in
  let env = { flocals = []; ilocals = []; iassign = []; fresh = 0 } in
  let* body, env' = stmts_gen env 2 in
  let* sched, threads = sched_gen in
  (* Threaded float reduction is bit-nondeterministic (the combine
     order over per-thread partials is not fixed), so a float acc is
     only generated on one thread; otherwise acc is an i64, whose
     wrapping sum is exactly order-insensitive.  Float stores are
     still observed bit-exactly through the serial checksum. *)
  let* accf = if threads = 1 then bool else return false in
  let* red = if accf then fexpr env' 2 else iexpr env' 2 in
  let* n = int_range 3 24 in
  let src =
    String.concat "\n"
      ([ "fn f(n: i64, x: []f64, ix: []i64, w: []f64, iw: []i64) f64 {";
         (if accf then "    var acc: f64 = 0.0;"
          else "    var acc: i64 = 0;");
         "    var i: i64 = 1;";
         Printf.sprintf
           "    //$omp parallel for reduction(+: acc) shared(x, ix, w, \
            iw) %s"
           sched;
         "    while (i < n - 1) : (i += 1) {" ]
      @ indent body
      @ [ Printf.sprintf "        acc += %s;" red;
          "    }";
          "    var j: i64 = 0;";
          "    var chk: f64 = 0.0;";
          "    while (j < n) : (j += 1) { chk = chk + w[j] + \
           float_of(iw[j]); }";
          "    return float_of(acc) + chk + float_of(i);";
          "}" ])
  in
  return (src, n, threads)

let args_for n =
  let x = Array.init n (fun k -> float_of_int ((k mod 7) - 3) *. 0.5) in
  let ix = Array.init n (fun k -> (k * 5 + 2) mod n) in
  [ V.VInt n; V.VFloatArr x; V.VIntArr ix;
    V.VFloatArr (Array.make n 0.); V.VIntArr (Array.make n 0) ]

(* One tier under the profiler: result, per-construct counts, and the
   bytecode-tier counters (captured before the final reset).           *)
let run_counted run =
  Omprt.Profile.reset ();
  Omprt.Profile.enable ();
  let res = try Ok (run ()) with e -> Error (Printexc.to_string e) in
  Omprt.Profile.disable ();
  let counts =
    List.map
      (fun (s : Omprt.Profile.snapshot) ->
        (Omprt.Profile.construct_name s.construct, s.count))
      (Omprt.Profile.snapshot ())
  in
  let bc = Omprt.Profile.bc_stats () in
  Omprt.Profile.reset ();
  (res, counts, bc)

let run_three_tiers src n threads =
  Omprt.Api.set_num_threads threads;
  let p = Interp.load ~name:"bcdiff.zr" src in
  let walker = run_counted (fun () -> Interp.call p "f" (args_for n)) in
  let compiled =
    let cc = Interp.Compile.compile p in
    run_counted (fun () -> Interp.Compile.call cc "f" (args_for n))
  in
  let bytecode =
    let cc = Interp.Compile.compile ~bc:{ Interp.Bcgen.elide = true } p in
    run_counted (fun () -> Interp.Compile.call cc "f" (args_for n))
  in
  (walker, compiled, bytecode)

let print_case (src, n, threads) =
  Printf.sprintf "n=%d threads=%d\n%s" n threads src

let prop_three_tier =
  QCheck2.Test.make
    ~name:
      "random covered programs: walker = compiled = bytecode (results, \
       profile counts), and the VM is entered"
    ~count:500 ~print:print_case program_gen
    (fun (src, n, threads) ->
      let (wres, wcounts, _), (cres, ccounts, cbc), (bres, bcounts, bbc) =
        run_three_tiers src n threads
      in
      (* structural compare, not (=): a NaN checksum is a legitimate
         outcome (w[i] /= 0.0) and must still count as agreement *)
      compare wres cres = 0 && compare wres bres = 0
      && wcounts = ccounts && wcounts = bcounts
      && cbc.Omprt.Profile.bc_entered = 0
      && bbc.Omprt.Profile.bc_entered > 0
      && bbc.Omprt.Profile.bc_bailouts = 0)

(* Out-of-bounds subscripts: one thread, static schedule, so the first
   faulting iteration is deterministic; all three tiers must raise the
   identical error (the bytecode tier through its guarded twin).       *)
let oob_program_gen =
  let open G in
  let* off = int_range 1 3 in
  let* dir = oneofl [ `Low; `High ] in
  let* compound = bool in
  let sub =
    match dir with
    | `Low -> Printf.sprintf "i - %d" off
    | `High -> Printf.sprintf "i + %d" off
  in
  let body =
    if compound then Printf.sprintf "w[%s] += x[i];" sub
    else Printf.sprintf "w[i] = x[%s];" sub
  in
  let src =
    Printf.sprintf
      {|
fn f(n: i64, x: []f64, ix: []i64, w: []f64, iw: []i64) f64 {
    var acc: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for reduction(+: acc) shared(x, ix, w, iw) schedule(static)
    while (i < n) : (i += 1) {
        %s
        acc += w[i];
    }
    return acc;
}
|}
      body
  in
  let* n = int_range 1 8 in
  return (src, n, 1)

let prop_oob_parity =
  QCheck2.Test.make
    ~name:"out-of-bounds bodies: identical error on all three tiers"
    ~count:100 ~print:print_case oob_program_gen
    (fun (src, n, threads) ->
      let (wres, _, _), (cres, _, _), (bres, _, _) =
        run_three_tiers src n threads
      in
      let is_err = match wres with Error _ -> true | Ok _ -> false in
      is_err && wres = cres && wres = bres)

(* ------------------------------------------------------------------ *)
(* Disassembly goldens.                                                *)

let stencil_src =
  {|
fn stencil(n: i64, a: []f64, b: []f64) f64 {
    var i: i64 = 1;
    //$omp parallel for shared(a, b)
    while (i < n - 1) : (i += 1) {
        b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
    }
    return b[1];
}
|}

let stencil_listing () =
  Omprt.Api.set_num_threads 1;
  let p = Zigomp.compile ~backend:`Bytecode ~name:"stencil.zr" stencil_src in
  let n = 32 in
  ignore
    (Zigomp.call p "stencil"
       [ V.VInt n; V.VFloatArr (Array.init n float_of_int);
         V.VFloatArr (Array.make n 0.) ]);
  match Zigomp.bc_listings p with
  | [ (label, listing) ] -> (label, listing)
  | l -> Alcotest.failf "expected one listing, got %d" (List.length l)

let stencil_golden =
  "registers: 2 int (iv=i0, upper=i1), 3 float\n\
  \  farr 0 <- slot 4 'b__ptr' (deref)\n\
  \  farr 1 <- slot 3 'a__ptr' (deref)\n\
   chunk check (all pass => elided code, else guarded):\n\
  \  b__ptr[iv+0 .. iv+0] in range over the chunk\n\
  \  a__ptr[iv-1 .. iv+1] in range over the chunk\n\
   code (elided):\n\
  \  @0    L21   cmpbr.ii !le i0{iv}, i1{upper}, @48\n\
  \  @6    L22   mulc.ld.fu f0, 0.25 * a__ptr[i0{iv}-1]   [unguarded]\n\
  \  @12   L22   mulc.ld.fu f1, 0.5 * a__ptr[i0{iv}]   [unguarded]\n\
  \  @18   L22   add.f f0, f0, f1\n\
  \  @24   L22   mulc.ld.fu f1, 0.25 * a__ptr[i0{iv}+1]   [unguarded]\n\
  \  @30   L22   add.f f0, f0, f1\n\
  \  @36   L22   st.f b__ptr[i0{iv}], f0   [unguarded]\n\
  \  @42   L21   addcmple.br i0{iv} += 1, <= i1{upper}, @6\n\
  \  @48   L21   halt\n\
   code (guarded twin):\n\
  \  @0    L21   cmpbr.ii !le i0{iv}, i1{upper}, @90\n\
  \  @6    L22   chk.f b__ptr[i0{iv}]\n\
  \  @12   L22   ldc.f f0, 0.25\n\
  \  @18   L22   ld.f f1, a__ptr[i0{iv}-1]\n\
  \  @24   L22   mul.f f0, f0, f1\n\
  \  @30   L22   ldc.f f1, 0.5\n\
  \  @36   L22   ld.f f2, a__ptr[i0{iv}]\n\
  \  @42   L22   mul.f f1, f1, f2\n\
  \  @48   L22   add.f f0, f0, f1\n\
  \  @54   L22   ldc.f f1, 0.25\n\
  \  @60   L22   ld.f f2, a__ptr[i0{iv}+1]\n\
  \  @66   L22   mul.f f1, f1, f2\n\
  \  @72   L22   add.f f0, f0, f1\n\
  \  @78   L22   st.f b__ptr[i0{iv}], f0   [unguarded]\n\
  \  @84   L21   addcmple.br i0{iv} += 1, <= i1{upper}, @6\n\
  \  @90   L21   halt\n"

let test_stencil_golden () =
  let label, listing = stencil_listing () in
  Alcotest.(check string) "drain label" "__omp_outlined_0#0" label;
  Alcotest.(check string) "stencil body listing" stencil_golden listing

(* Register allocation of the NPB CG loop bodies: every drain of
   conj_grad specialises (no bailouts), and the register-file header
   of each listing — the allocator's contract — is pinned.             *)
let test_cg_regalloc_golden () =
  Omprt.Api.set_num_threads 1;
  Omprt.Profile.reset ();
  let p = Interp.load ~name:"conj_grad.zr" Harness.Zr_cg.conj_grad_src in
  let cc = Interp.Compile.compile ~bc:{ Interp.Bcgen.elide = true } p in
  ignore (Interp.Compile.call cc "conj_grad" (Test_npb_zr.spd_args 16));
  let bc = Omprt.Profile.bc_stats () in
  Omprt.Profile.reset ();
  Alcotest.(check int) "no conj_grad drain bails" 0
    bc.Omprt.Profile.bc_bailouts;
  Alcotest.(check bool) "drains entered" true
    (bc.Omprt.Profile.bc_entered > 0);
  let header listing =
    match String.index_opt listing '\n' with
    | Some k -> String.sub listing 0 k
    | None -> listing
  in
  let headers =
    List.map
      (fun (label, listing) -> Printf.sprintf "%s: %s" label (header listing))
      (List.sort compare (Interp.Compile.bc_listings cc))
  in
  Alcotest.(check (list string)) "per-drain register files"
    [ "__omp_outlined_0#0: registers: 2 int (iv=i0, upper=i1), 1 float";
      "__omp_outlined_0#1: registers: 2 int (iv=i0, upper=i1), 1 float";
      "__omp_outlined_0#2: registers: 4 int (iv=i0, upper=i1), 3 float";
      "__omp_outlined_0#3: registers: 2 int (iv=i0, upper=i1), 1 float";
      "__omp_outlined_0#4: registers: 2 int (iv=i0, upper=i1), 3 float";
      "__omp_outlined_0#5: registers: 2 int (iv=i0, upper=i1), 1 float";
      "__omp_outlined_0#6: registers: 2 int (iv=i0, upper=i1), 3 float";
      "__omp_outlined_0#7: registers: 4 int (iv=i0, upper=i1), 3 float";
      "__omp_outlined_0#8: registers: 2 int (iv=i0, upper=i1), 4 float" ]
    headers

(* collapse(n) loops: the fused-iteration-space drain — counter
   recovery by division/modulo per nest level — specialises into the
   [recover] superinstruction instead of bailing to closures, and the
   bytecode result matches the compiled tier (including downward
   steps, whose recovery multiplies by a negative immediate). *)
let collapse_src =
  {|
fn f(n: i64, hits: []i64) i64 {
    var i: i64 = 0;
    //$omp parallel for collapse(3) shared(hits)
    while (i < 5) : (i += 1) {
        var j: i64 = 0;
        while (j < 7) : (j += 1) {
            var k: i64 = 0;
            while (k < 3) : (k += 1) {
                hits[i * 21 + j * 3 + k] += 1;
            }
        }
    }
    var t: i64 = 0;
    var s: i64 = 0;
    while (t < n) : (t += 1) { s += hits[t] * (t + 1); }
    return s;
}

fn down(a: []i64) i64 {
    var s: i64 = 0;
    var i: i64 = 9;
    //$omp parallel for collapse(2) reduction(+: s) shared(a)
    while (i >= 0) : (i -= 3) {
        var j: i64 = 0;
        while (j < 8) : (j += 2) {
            s += a[i * 8 + j];
        }
    }
    return s;
}
|}

let test_collapse_bytecode () =
  Omprt.Api.set_num_threads 4;
  let n = 105 in
  let run backend fname args =
    Omprt.Profile.reset ();
    let p = Interp.load ~name:"collapse.zr" collapse_src in
    let cc =
      match backend with
      | `Compiled -> Interp.Compile.compile p
      | `Bytecode -> Interp.Compile.compile ~bc:{ Interp.Bcgen.elide = true } p
    in
    let r = Interp.Compile.call cc "f" args in
    ignore fname;
    let bc = Omprt.Profile.bc_stats () in
    Omprt.Profile.reset ();
    (r, bc, cc)
  in
  let args () = [ V.VInt n; V.VIntArr (Array.make n 0) ] in
  let cres, _, _ = run `Compiled "f" (args ()) in
  let bres, bc, cc = run `Bytecode "f" (args ()) in
  Alcotest.(check bool) "compiled = bytecode" true (compare cres bres = 0);
  Alcotest.(check int) "no bailouts" 0 bc.Omprt.Profile.bc_bailouts;
  Alcotest.(check bool) "drains entered" true
    (bc.Omprt.Profile.bc_entered > 0);
  let contains_at l from re =
    from + String.length re <= String.length l
    && String.sub l from (String.length re) = re
  in
  let has_recover l =
    let rec go from =
      from < String.length l
      && (contains_at l from "recover " || go (from + 1))
    in
    go 0
  in
  let recovers listing =
    List.length
      (List.filter has_recover (String.split_on_char '\n' listing))
  in
  (match Interp.Compile.bc_listings cc with
   | [ (_, listing) ] ->
       Alcotest.(check int) "one recover per nest level" 3
         (recovers listing)
   | l -> Alcotest.failf "expected one listing, got %d" (List.length l));
  (* mixed/downward steps under the bytecode tier *)
  let a = Array.init 80 (fun t -> (t * t) mod 97) in
  let expected = ref 0 in
  for i = 0 to 9 do
    for j = 0 to 7 do
      if i mod 3 = 0 && j mod 2 = 0 then
        expected := !expected + a.((i * 8) + j)
    done
  done;
  Omprt.Profile.reset ();
  let p = Interp.load ~name:"collapse.zr" collapse_src in
  let cc = Interp.Compile.compile ~bc:{ Interp.Bcgen.elide = true } p in
  let r = Interp.Compile.call cc "down" [ V.VIntArr (Array.copy a) ] in
  let bc = Omprt.Profile.bc_stats () in
  Omprt.Profile.reset ();
  Alcotest.(check int) "down: no bailouts" 0 bc.Omprt.Profile.bc_bailouts;
  Alcotest.(check bool) "down: drains entered" true
    (bc.Omprt.Profile.bc_entered > 0);
  (match r with
   | V.VInt got -> Alcotest.(check int) "down: sum" !expected got
   | v -> Alcotest.failf "down: expected an int, got %s" (V.type_name v))

(* EP and IS loop bodies call registered host functions (ep_batch and
   the is_ phases), which the planner must refuse: every drain
   execution is a bailout, and nothing specialises. *)
let test_ep_is_bail () =
  Omprt.Profile.reset ();
  let r = Harness.Zr_ep.run ~backend:`Bytecode ~cls:Npb.Classes.S ~nthreads:2 () in
  (match r.Npb.Result.verification with
   | Npb.Result.Verified -> ()
   | _ -> Alcotest.fail "EP class S (bytecode) must verify");
  let ep = Omprt.Profile.bc_stats () in
  Alcotest.(check int) "EP: no drain enters the VM" 0
    ep.Omprt.Profile.bc_entered;
  Alcotest.(check bool) "EP: drains bail to closures" true
    (ep.Omprt.Profile.bc_bailouts > 0);
  Omprt.Profile.reset ();
  let r = Harness.Zr_is.run ~backend:`Bytecode ~cls:Npb.Classes.S ~nthreads:2 () in
  (match r.Npb.Result.verification with
   | Npb.Result.Verified -> ()
   | _ -> Alcotest.fail "IS class S (bytecode) must verify");
  let is = Omprt.Profile.bc_stats () in
  Omprt.Profile.reset ();
  Alcotest.(check int) "IS: no drain enters the VM" 0
    is.Omprt.Profile.bc_entered;
  Alcotest.(check bool) "IS: drains bail to closures" true
    (is.Omprt.Profile.bc_bailouts > 0)

(* ------------------------------------------------------------------ *)
(* The standalone examples under compiled vs bytecode.                 *)

(* cwd is test/ under dune runtest, the workspace root under dune exec *)
let examples_dir =
  let up = Filename.concat (Filename.concat ".." "examples") "zr" in
  if Sys.file_exists up then up else Filename.concat "examples" "zr"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_examples_parity () =
  Omprt.Api.set_num_threads 4;
  List.iter
    (fun name ->
      let src = read_file (Filename.concat examples_dir name) in
      let run backend =
        let p = Zigomp.compile ~backend ~name src in
        try Ok (Zigomp.run_main p) with e -> Error (Printexc.to_string e)
      in
      let compiled = run `Compiled in
      let bytecode = run `Bytecode in
      if compiled <> bytecode then
        Alcotest.failf "%s: compiled and bytecode disagree" name)
    [ "jacobi.zr"; "mandelbrot.zr"; "histogram.zr" ]

let suite =
  [ Alcotest.test_case "ZIGOMP_BACKEND / ZIGOMP_BC_ELIDE parsing" `Quick
      test_parse_backend;
    Alcotest.test_case "unknown backend warns once, falls back" `Quick
      test_backend_warn_once;
    QCheck_alcotest.to_alcotest prop_three_tier;
    QCheck_alcotest.to_alcotest prop_oob_parity;
    Alcotest.test_case "stencil body listing golden" `Quick
      test_stencil_golden;
    Alcotest.test_case "CG bodies: register-allocation golden" `Quick
      test_cg_regalloc_golden;
    Alcotest.test_case "collapse(n) drains enter the VM (recover op)" `Quick
      test_collapse_bytecode;
    Alcotest.test_case "EP/IS bodies bail to closures (and verify)" `Quick
      test_ep_is_bail;
    Alcotest.test_case "examples: compiled = bytecode" `Quick
      test_examples_parity;
  ]

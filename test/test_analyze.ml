(* The [zrc analyze] static analyser, end to end: autoscoping must
   suggest the exact repair on each racy fixture (matching the clean
   twin's clauses), the clean fixtures and the NPB Zr kernels must come
   back without findings, [--fix] must converge to a clean fixpoint that
   the dynamic checker also accepts, and finding ids must line up across
   backends so {!Report.merge} suppresses statically-proven duplicates.
   A differential QCheck property ties the two backends together: every
   statically PROVEN race must be dynamically observable, and a
   statically CLEAN program must produce zero dynamic findings. *)

module Checker = Zigomp.Checker
module Report = Checker.Report
module Analyzer = Zigomp.Analyzer

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let examples_dir =
  (* the test binary runs in _build/default/test *)
  Filename.concat (Filename.concat ".." "examples") "zr"

let analyze_file name =
  let path = Filename.concat examples_dir name in
  Zigomp.analyze ~name (read_file path)

let config ?(schedules = 3) ?(sync_sweep = true) () =
  { Checker.nthreads = 4; schedules; seed = 42; sync_sweep; lint = true;
    exploration = Checker.Sampled }

let lines_of (r : Report.t) =
  List.map (fun (f : Report.finding) -> f.Report.line) r.Report.findings

let ids_of (r : Report.t) =
  List.map (fun (f : Report.finding) -> f.Report.id) r.Report.findings

let contains = Astring_contains.contains

(* ---- golden autoscoping: racy fixtures --------------------------- *)

(* Each racy fixture has exactly one defect; the suggested clause must
   be the one its clean twin declares. *)
let racy_expectations =
  [ ("racy/missing_reduction.zr", "race|s", "suggest reduction(+: s)");
    ("racy/shared_counter.zr", "race|counter",
     "suggest //$omp atomic before the update");
    ("racy/nowait_useafter.zr", "race|q", "suggest removing nowait");
    ("racy/task_no_taskwait.zr", "race|r",
     "suggest //$omp taskwait before the dependent statement") ]

let test_racy_suggestions () =
  List.iter
    (fun (name, id, suggestion) ->
      let r = analyze_file name in
      Alcotest.(check int) (name ^ ": one finding") 1
        (List.length r.Analyzer.report.Report.findings);
      Alcotest.(check int) (name ^ ": exit code") 2
        (Report.exit_code r.Analyzer.report);
      let f = List.hd r.Analyzer.report.Report.findings in
      Alcotest.(check string) (name ^ ": id") id f.Report.id;
      Alcotest.(check bool) (name ^ ": verdict PROVEN") true
        (f.Report.verdict = Some Report.Proven);
      Alcotest.(check bool) (name ^ ": span for caret") true
        (f.Report.span <> None);
      Alcotest.(check bool)
        (name ^ ": suggests " ^ suggestion ^ " in " ^ f.Report.line)
        true
        (contains f.Report.line suggestion))
    racy_expectations

(* ---- clean programs, kernels ------------------------------------- *)

let test_clean_programs () =
  List.iter
    (fun name ->
      let r = analyze_file name in
      Alcotest.(check bool) (name ^ ": fully clean") true
        (Analyzer.clean r);
      Alcotest.(check int) (name ^ ": exit code") 0
        (Report.exit_code r.Analyzer.report))
    [ "clean/reduction.zr"; "clean/atomic_counter.zr";
      "clean/nowait_barrier.zr"; "clean/task_taskwait.zr";
      "clean/sections_atomic.zr"; "clean/task_capture_fp.zr";
      "analyze/taskloop_disjoint.zr"; "histogram.zr"; "jacobi.zr";
      "mandelbrot.zr" ]

(* The NPB kernels are the paper's workloads: the analyser must not
   cry wolf on correct production-shaped code.  CG and EP are fully
   clean; IS keeps a few MAY advisories (opaque subscripts through the
   bucket indirection) but zero verdict-affecting findings. *)
let test_kernels_no_findings () =
  List.iter
    (fun (name, src) ->
      let r = Zigomp.analyze ~name src in
      Alcotest.(check (list string)) (name ^ ": no findings") []
        (lines_of r.Analyzer.report))
    [ ("conj_grad.zr", Zigomp.Harness.Zr_cg.conj_grad_src);
      ("ep.zr", Zigomp.Harness.Zr_ep.src);
      ("is.zr", Zigomp.Harness.Zr_is.src) ];
  List.iter
    (fun (name, src) ->
      Alcotest.(check bool) (name ^ ": no MAY advisories either") true
        (Analyzer.clean (Zigomp.analyze ~name src)))
    [ ("conj_grad.zr", Zigomp.Harness.Zr_cg.conj_grad_src);
      ("ep.zr", Zigomp.Harness.Zr_ep.src) ]

(* ---- SIV dependence test ----------------------------------------- *)

let test_siv_carried () =
  let r = analyze_file "analyze/siv_carried.zr" in
  let f =
    match r.Analyzer.report.Report.findings with
    | [ f ] -> f
    | fs ->
        Alcotest.failf "expected one finding, got %d" (List.length fs)
  in
  Alcotest.(check string) "dep shares the race id space" "race|a"
    f.Report.id;
  Alcotest.(check bool) "distance 1 in direction vector" true
    (contains f.Report.line "distance 1, direction (>)");
  Alcotest.(check bool) "no clause can repair it" true
    (contains f.Report.line "restructure the loop");
  (* a carried dependence has no clause fix: --fix must refuse to
     touch the program rather than paper over it *)
  let fixed, r', rounds =
    Zigomp.analyze_fix ~name:"siv_carried.zr"
      (read_file (Filename.concat examples_dir "analyze/siv_carried.zr"))
  in
  Alcotest.(check int) "no fix rounds" 0 rounds;
  Alcotest.(check bool) "still reported" false
    (Report.clean r'.Analyzer.report);
  Alcotest.(check bool) "source untouched" true
    (String.equal fixed
       (read_file (Filename.concat examples_dir "analyze/siv_carried.zr")))

(* ---- private read-before-write ----------------------------------- *)

let test_private_read_first () =
  let r = analyze_file "analyze/private_read_first.zr" in
  Alcotest.(check bool) "suggests firstprivate(t)" true
    (List.exists
       (fun l -> contains l "suggest firstprivate(t)")
       (lines_of r.Analyzer.report));
  let _, r', rounds =
    Zigomp.analyze_fix ~name:"private_read_first.zr"
      (read_file
         (Filename.concat examples_dir "analyze/private_read_first.zr"))
  in
  Alcotest.(check int) "fixed in one round" 1 rounds;
  Alcotest.(check bool) "clean after fix" true (Analyzer.clean r')

(* ---- --fix: fixpoint, idempotence, dynamic agreement -------------- *)

let test_fix_fixpoint () =
  List.iter
    (fun (name, _, _) ->
      let path = Filename.concat examples_dir name in
      let fixed, r, rounds = Zigomp.analyze_fix ~name (read_file path) in
      Alcotest.(check int) (name ^ ": one rewrite round") 1 rounds;
      Alcotest.(check bool) (name ^ ": clean after fix") true
        (Analyzer.clean r);
      (* idempotence: fixing the fixed program changes nothing *)
      let fixed', _, rounds' = Zigomp.analyze_fix ~name fixed in
      Alcotest.(check int) (name ^ ": no further rounds") 0 rounds';
      Alcotest.(check bool) (name ^ ": fix is a fixpoint") true
        (String.equal fixed fixed');
      (* the dynamic checker agrees the fixed program is race-free *)
      let dyn = Zigomp.check ~name ~config:(config ()) fixed in
      Alcotest.(check (list string)) (name ^ ": dynamically clean") []
        (lines_of dyn))
    racy_expectations

(* ---- tasking fixtures: sections and capture-by-reference ---------- *)

(* Fixture bodies start at [fn main]; the leading comment differs
   between a racy fixture and its clean twin, so twin-equality checks
   compare from there. *)
let from_fn src =
  let needle = "fn main" in
  let nl = String.length needle in
  let rec find i =
    if i + nl > String.length src then src
    else if String.sub src i nl = needle then
      String.sub src i (String.length src - i)
    else find (i + 1)
  in
  find 0

let one_proven name (r : Analyzer.result) =
  match r.Analyzer.report.Report.findings with
  | [ f ] ->
      Alcotest.(check bool) (name ^ ": verdict PROVEN") true
        (f.Report.verdict = Some Report.Proven);
      f
  | fs -> Alcotest.failf "%s: expected one finding, got %d" name
            (List.length fs)

let fix_to_twin ~name ~twin =
  let src = read_file (Filename.concat examples_dir name) in
  let fixed, r', rounds = Zigomp.analyze_fix ~name src in
  Alcotest.(check int) (name ^ ": one fix round") 1 rounds;
  Alcotest.(check bool) (name ^ ": clean after fix") true
    (Analyzer.clean r');
  Alcotest.(check string) (name ^ ": fix reproduces the clean twin")
    (from_fn (read_file (Filename.concat examples_dir twin)))
    (from_fn fixed)

let test_sections_scalar () =
  let r = analyze_file "analyze/sections_scalar.zr" in
  let f = one_proven "sections_scalar" r in
  Alcotest.(check string) "id" "race|w" f.Report.id;
  Alcotest.(check bool) "suggests atomic" true
    (contains f.Report.line "suggest //$omp atomic");
  fix_to_twin ~name:"analyze/sections_scalar.zr"
    ~twin:"clean/sections_atomic.zr"

let test_task_capture_loop () =
  let r = analyze_file "analyze/task_capture_loop.zr" in
  let f = one_proven "task_capture_loop" r in
  Alcotest.(check string) "id" "race|cap" f.Report.id;
  Alcotest.(check bool) "suggests firstprivate capture" true
    (contains f.Report.line "suggest firstprivate(cap)");
  fix_to_twin ~name:"analyze/task_capture_loop.zr"
    ~twin:"clean/task_capture_fp.zr"

let test_task_no_taskwait_twin () =
  fix_to_twin ~name:"racy/task_no_taskwait.zr"
    ~twin:"clean/task_taskwait.zr"

(* ---- cross-backend id stability and merge ------------------------ *)

let test_merge_suppresses_proven () =
  let name = "racy/missing_reduction.zr" in
  let source = read_file (Filename.concat examples_dir name) in
  let static = (Zigomp.analyze ~name source).Analyzer.report in
  let dynamic = Zigomp.check ~name ~config:(config ()) source in
  (* both backends name the same defect *)
  Alcotest.(check bool) "static proves race|s" true
    (List.mem "race|s" (ids_of static));
  Alcotest.(check bool) "dynamic observes race|s" true
    (List.mem "race|s" (ids_of dynamic));
  let merged = Report.merge ~static ~dynamic in
  (* every dynamic duplicate of a proven finding is suppressed *)
  Alcotest.(check int) "merged = static findings only"
    (List.length static.Report.findings)
    (List.length merged.Report.findings);
  Alcotest.(check bool) "merged still fails" false (Report.clean merged);
  Alcotest.(check bool) "merged keeps the static caret source" true
    (merged.Report.source <> None)

let default_none_src = {|
fn main() f64 {
    var n: i64 = 4;
    var t: f64 = 2.0;
    var s: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for default(none) reduction(+: s) firstprivate(n)
    while (i < n) : (i += 1) {
        s += t;
    }
    return s;
}
|}

(* default(none) is checked twice — statically here, and by the
   preprocessor when the dynamic checker compiles the program.  The two
   findings must share an id so the merged report shows one defect. *)
let test_default_none_ids_match () =
  let is_dn (f : Report.finding) =
    String.length f.Report.id >= 17
    && String.sub f.Report.id 0 17 = "lint|default-none"
  in
  let static = (Zigomp.analyze ~name:"dn.zr" default_none_src) in
  let dynamic = Zigomp.check ~name:"dn.zr" ~config:(config ()) default_none_src in
  let sids =
    List.filter_map
      (fun (f : Report.finding) -> if is_dn f then Some f.Report.id else None)
      static.Analyzer.report.Report.findings
  in
  let dids =
    List.filter_map
      (fun (f : Report.finding) -> if is_dn f then Some f.Report.id else None)
      dynamic.Report.findings
  in
  Alcotest.(check bool) "static flags default(none)" true (sids <> []);
  Alcotest.(check (list string)) "same ids on both backends"
    (List.sort_uniq compare sids)
    (List.sort_uniq compare dids);
  (* --fix appends the missing shared() clause (the counter is part of
     the preprocessor's default(none) set, so it is listed too) *)
  let fixed, r', _ = Zigomp.analyze_fix ~name:"dn.zr" default_none_src in
  Alcotest.(check bool) "fix adds shared(i, t)" true
    (contains fixed "shared(i, t)");
  Alcotest.(check bool) "clean after fix" true (Analyzer.clean r')

(* ---- JSON schema -------------------------------------------------- *)

let test_json () =
  let racy = analyze_file "racy/missing_reduction.zr" in
  let j = Report.to_json ~may:racy.Analyzer.may racy.Analyzer.report in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true (contains j needle))
    [ {|"schema": "zigomp-report/1"|}; {|"backend": "analyze"|};
      {|"clean": false|}; {|"verdict": "PROVEN"|}; {|"id": "race|s"|};
      {|"position"|}; {|"may": []|} ];
  let clean = analyze_file "clean/reduction.zr" in
  Alcotest.(check bool) "clean json" true
    (contains
       (Report.to_json ~may:clean.Analyzer.may clean.Analyzer.report)
       {|"clean": true|})

(* ---- differential property: static vs dynamic --------------------- *)

(* Small generated region programs over three body shapes and three
   synchronisation regimes.  Obligations, per program:
   - every statically PROVEN race id must appear among the dynamic
     checker's findings (PROVEN means observable);
   - a statically CLEAN program (no findings, no MAY advisories) must
     produce zero dynamic findings. *)

type body = SumArr | IncS | ArrInc
type sync = NoSync | Atomic | Reduction

let gen_program ~body ~sync ~nowait ~reader =
  let touches_s = body <> ArrInc in
  let shared =
    [ "a" ]
    @ (if touches_s && sync <> Reduction then [ "s" ] else [])
    @ (if reader then [ "out" ] else [])
  in
  let atomic = if sync = Atomic then "            //$omp atomic\n" else "" in
  let body_text =
    match body with
    | SumArr -> atomic ^ "            s = s + a[i];"
    | IncS -> atomic ^ "            s = s + 1.0;"
    | ArrInc -> "            a[i] = a[i] + 1.0;"
  in
  Printf.sprintf
    {|
fn main() f64 {
    var n: i64 = 8;
    var a = alloc_f64(n);
    var j: i64 = 0;
    while (j < n) : (j += 1) {
        a[j] = 1.0;
    }
    var s: f64 = 0.0;
    var out: f64 = 0.0;
    //$omp parallel shared(%s) firstprivate(n)%s
    {
        var i: i64 = 0;
        //$omp for%s
        while (i < n) : (i += 1) {
%s
        }
%s    }
    return s + out;
}
|}
    (String.concat ", " shared)
    (if sync = Reduction then " reduction(+: s)" else "")
    (if nowait then " nowait" else "")
    body_text
    (if reader then
       "        //$omp single\n        {\n            out = a[0];\n\
       \        }\n"
     else "")

let case_gen =
  QCheck2.Gen.(
    let* body = oneofl [ SumArr; IncS; ArrInc ] in
    let* sync =
      if body = ArrInc then return NoSync
      else oneofl [ NoSync; Atomic; Reduction ]
    in
    let* nowait = bool in
    let* reader = bool in
    return (body, sync, nowait, reader))

let print_case (body, sync, nowait, reader) =
  gen_program ~body ~sync ~nowait ~reader

let prop_static_vs_dynamic =
  QCheck2.Test.make ~name:"static PROVEN => dynamic finds it; CLEAN => quiet"
    ~count:24 ~print:print_case case_gen
    (fun (body, sync, nowait, reader) ->
      let src = gen_program ~body ~sync ~nowait ~reader in
      let st = Zigomp.analyze ~name:"diff.zr" src in
      let dyn =
        Zigomp.check ~name:"diff.zr" ~config:(config ()) src
      in
      let dyn_ids = ids_of dyn in
      let proven_observed =
        List.for_all
          (fun (f : Report.finding) ->
            f.Report.verdict <> Some Report.Proven
            || (f.Report.kind <> Report.Race && f.Report.kind <> Report.Dep)
            || List.mem f.Report.id dyn_ids)
          st.Analyzer.report.Report.findings
      in
      let clean_agrees =
        (not (Analyzer.clean st)) || Report.clean dyn
      in
      proven_observed && clean_agrees)

(* ---- differential property over tasking constructs --------------- *)

(* Reuses {!Test_task_diff}'s generator: its segments are race-free by
   construction, so the static task graph must come back fully clean
   (no findings, no MAY) and DPOR must agree.  The racy family below
   flips the obligation: each member seeds one tasking race the
   analyser must PROVE with an id DPOR also reports. *)

let dpor_config ?(max_execs = 64) () =
  { Checker.nthreads = 2; schedules = 3; seed = 42; sync_sweep = true;
    lint = true;
    exploration = Checker.Dpor { max_execs; preempt_bound = 2 } }

let check_task_fn src =
  Checker.check_run ~name:"taskdiff.zr" ~config:(dpor_config ())
    ~source:src
    ~entry:(fun prog ->
      ignore
        (Interp.call prog "f"
           [ Interp.Value.VInt Test_task_diff.cells;
             Interp.Value.VIntArr (Array.make Test_task_diff.cells 0) ]))
    ()

(* The render always declares shared(x, total); a drawn segment list
   may reference only one of them, and an unused clause is a MAY
   advisory [Analyzer.clean] rejects.  Appending one race-free segment
   per shared name keeps the clean obligation strict. *)
let full_segs segs =
  segs @ [ Test_task_diff.Tasks (1, 1); Test_task_diff.Broadcast 1 ]

let prop_tasking_clean_quiet =
  QCheck2.Test.make
    ~name:"tasking: generated race-free programs are static CLEAN and \
           DPOR quiet"
    ~count:10
    ~print:(fun (segs, _) -> Test_task_diff.render (full_segs segs))
    Test_task_diff.case_gen
    (fun (segs, _) ->
      let src = Test_task_diff.render (full_segs segs) in
      let st = Zigomp.analyze ~name:"taskdiff.zr" src in
      Analyzer.clean st && Report.clean (check_task_fn src))

type racy_task = RTaskCont | RSections | RTwoTasks

let racy_task_src ~shape ~c =
  match shape with
  | RTaskCont ->
      Printf.sprintf
        {|fn main() i64 {
    var r: i64 = 0;
    //$omp parallel num_threads(2)
    {
        //$omp single nowait
        {
            //$omp task shared(r)
            { r = r + %d; }
            r = r + 1;
        }
    }
    return r;
}
|}
        c
  | RSections ->
      Printf.sprintf
        {|fn main() i64 {
    var w: i64 = 0;
    //$omp parallel num_threads(2)
    {
        //$omp sections
        {
            //$omp section
            { w = w + 1; }
            //$omp section
            { w = w + %d; }
        }
    }
    return w;
}
|}
        c
  | RTwoTasks ->
      Printf.sprintf
        {|fn main() i64 {
    var r: i64 = 0;
    //$omp parallel num_threads(2)
    {
        //$omp single
        {
            //$omp task shared(r)
            { r = r + 1; }
            //$omp task shared(r)
            { r = r + %d; }
            //$omp taskwait
        }
    }
    return r;
}
|}
        c

let prop_tasking_proven_observed =
  QCheck2.Test.make
    ~name:"tasking: static PROVEN races are DPOR-observable"
    ~count:9
    ~print:(fun (shape, c) -> racy_task_src ~shape ~c)
    QCheck2.Gen.(
      pair (oneofl [ RTaskCont; RSections; RTwoTasks ]) (int_range 2 9))
    (fun (shape, c) ->
      let src = racy_task_src ~shape ~c in
      let st = Zigomp.analyze ~name:"rtask.zr" src in
      let proven =
        List.filter
          (fun (f : Report.finding) ->
            f.Report.verdict = Some Report.Proven
            && (f.Report.kind = Report.Race || f.Report.kind = Report.Dep))
          st.Analyzer.report.Report.findings
      in
      proven <> []
      &&
      let dyn = Zigomp.check ~name:"rtask.zr" ~config:(dpor_config ()) src in
      let dyn_ids = ids_of dyn in
      List.for_all
        (fun (f : Report.finding) -> List.mem f.Report.id dyn_ids)
        proven)

let suite =
  [ Alcotest.test_case "racy fixtures: exact clause suggestions" `Quick
      test_racy_suggestions;
    Alcotest.test_case "clean fixtures and examples: no findings" `Quick
      test_clean_programs;
    Alcotest.test_case "NPB kernels: no findings" `Quick
      test_kernels_no_findings;
    Alcotest.test_case "SIV test proves carried dependence" `Quick
      test_siv_carried;
    Alcotest.test_case "private read-before-write -> firstprivate" `Quick
      test_private_read_first;
    Alcotest.test_case "sections over one scalar: proven + atomic fix"
      `Quick test_sections_scalar;
    Alcotest.test_case "task capture of mutated counter -> firstprivate"
      `Quick test_task_capture_loop;
    Alcotest.test_case "--fix inserts the taskwait of the clean twin"
      `Quick test_task_no_taskwait_twin;
    Alcotest.test_case "--fix reaches a clean, idempotent fixpoint" `Slow
      test_fix_fixpoint;
    Alcotest.test_case "merge suppresses statically-proven duplicates"
      `Quick test_merge_suppresses_proven;
    Alcotest.test_case "default(none): one id across backends" `Quick
      test_default_none_ids_match;
    Alcotest.test_case "json report schema" `Quick test_json;
    QCheck_alcotest.to_alcotest prop_static_vs_dynamic;
    QCheck_alcotest.to_alcotest prop_tasking_clean_quiet;
    QCheck_alcotest.to_alcotest prop_tasking_proven_observed;
  ]

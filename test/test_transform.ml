(* Loop-transformation pragmas: tile / unroll / interchange legality,
   golden rewrites, the collapse(2) fixtures, the roofline prediction
   hook, and a qcheck differential property — a transformed program
   computes exactly what the untransformed one does, on every backend
   and team size.  The forced-rewrite test shows a refusal was sound:
   [~force:true] on a refused interchange really does introduce the
   race the checker then observes. *)

module V = Interp.Value
module Transform = Zigomp.Preprocessor.Transform

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture name =
  read_file
    (Filename.concat
       (Filename.concat (Filename.concat ".." "examples") "zr")
       (Filename.concat "transform" name))

let contains_sub ~haystack ~needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let check_contains msg ~haystack ~needle =
  if not (contains_sub ~haystack ~needle) then
    Alcotest.failf "%s: %S not found in output" msg needle

(* ------------------------------------------------------------------ *)
(* Golden rewrites: the exact transformed source for one program per
   transform.  Synthetic names embed the directive's source line, and
   a consumed clause leaves [//$omp for ] with a trailing space where
   the clause text was.                                                *)

let tile_input =
  {|fn f(out: []i64, a: []i64) i64 {
    //$omp parallel shared(out, a)
    {
        var i: i64 = 0;
        //$omp for tile(4, 4)
        while (i < 10) : (i += 1) {
            var j: i64 = 0;
            while (j < 12) : (j += 1) {
                out[i * 12 + j] = a[j * 10 + i] + 1;
            }
        }
    }
    return out[0];
}
|}

let tile_expected =
  {|fn f(out: []i64, a: []i64) i64 {
    //$omp parallel shared(out, a)
    {
        var i: i64 = 0;
        //$omp for 
        while (i < 10) : (i += 4) {
    var __omp_t1_5 = 0;
    while (__omp_t1_5 < 12) : (__omp_t1_5 += 4) {
        var __omp_p0_5 = i;
        while ((__omp_p0_5 < 10) and (__omp_p0_5 < i + 4)) : (__omp_p0_5 += 1) {
            var __omp_p1_5 = __omp_t1_5;
            while ((__omp_p1_5 < 12) and (__omp_p1_5 < __omp_t1_5 + 4)) : (__omp_p1_5 += 1) {
                out[__omp_p0_5 * 12 + __omp_p1_5] = a[__omp_p1_5 * 10 + __omp_p0_5] + 1;
            }
        }
    }
}
    }
    return out[0];
}
|}

let interchange_input =
  {|fn f(out: []i64, a: []i64) i64 {
    //$omp parallel shared(out, a)
    {
        var i: i64 = 0;
        //$omp for interchange
        while (i < 6) : (i += 1) {
            var j: i64 = 0;
            while (j < 8) : (j += 1) {
                out[j * 6 + i] = a[j * 6 + i] * 2;
            }
        }
    }
    return out[0];
}
|}

let interchange_expected =
  {|fn f(out: []i64, a: []i64) i64 {
    //$omp parallel shared(out, a)
    {
        var i: i64 = 0;
        {
var __omp_x1_5 = 0;
//$omp for 
        while (__omp_x1_5 < 8) : (__omp_x1_5 += 1) {
    var __omp_x0_5 = i;
    while (__omp_x0_5 < 6) : (__omp_x0_5 += 1) {
                out[__omp_x1_5 * 6 + __omp_x0_5] = a[__omp_x1_5 * 6 + __omp_x0_5] * 2;
            }
}
}
    }
    return out[0];
}
|}

let unroll_input =
  {|fn f(y: []i64, x: []i64) i64 {
    //$omp parallel shared(y, x)
    {
        var i: i64 = 0;
        //$omp for unroll(3)
        while (i < 10) : (i += 1) {
            y[i] = x[i] + i;
        }
    }
    return y[0];
}
|}

let unroll_expected =
  {|fn f(y: []i64, x: []i64) i64 {
    //$omp parallel shared(y, x)
    {
        var i: i64 = 0;
        //$omp for 
        while (i < 10) : (i += 3) {
    {
            y[i] = x[i] + i;
        }
    if ((i + 1) < 10) {
            y[(i + 1)] = x[(i + 1)] + (i + 1);
        }
    if ((i + 2) < 10) {
            y[(i + 2)] = x[(i + 2)] + (i + 2);
        }
}
    }
    return y[0];
}
|}

let test_goldens () =
  let golden what input expected =
    match Transform.run ~name:(what ^ ".zr") input with
    | None -> Alcotest.failf "%s: no rewrite applied" what
    | Some got -> Alcotest.(check string) what expected got
  in
  golden "tile" tile_input tile_expected;
  golden "interchange" interchange_input interchange_expected;
  golden "unroll" unroll_input unroll_expected

(* ------------------------------------------------------------------ *)
(* Refusals: verdicts, reasons and clause stripping.                   *)

let parse_ctx source =
  let ast, spans =
    Zigomp.Frontend.Parser.parse_string ~name:"refuse.zr" source
  in
  { Zigomp.Preprocessor.Synth.ast; spans }

let nest_with clause body =
  Printf.sprintf
    {|fn f(a: []i64) i64 {
    //$omp parallel shared(a)
    {
        var i: i64 = 1;
        //$omp for %s
        while (i < 64) : (i += 1) {
            var j: i64 = 1;
            while (j < 63) : (j += 1) {
                %s
            }
        }
    }
    return a[0];
}
|}
    clause body

let assess_one source =
  match Transform.assess (parse_ctx source) with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected one refusal, got %d" (List.length rs)

let test_refusal_verdicts () =
  (* distance (1, -1): provably illegal for both tile and interchange *)
  let carried = "a[i * 64 + j] = a[i * 64 + j - 63] + 1;" in
  let r = assess_one (nest_with "tile(8, 8)" carried) in
  Alcotest.(check bool) "tile (1,-1) is PROVEN" true
    (r.Transform.verdict = Transform.Proven && r.Transform.clause = "tile");
  let r = assess_one (nest_with "interchange" carried) in
  Alcotest.(check bool) "interchange (1,-1) is PROVEN" true
    (r.Transform.verdict = Transform.Proven);
  (* an inner-carried recurrence: classically interchangeable, but the
     swap would move the worksharing onto the carrying loop *)
  let inner_rec = "a[i * 64 + j] = a[i * 64 + j - 1] + 1;" in
  let r = assess_one (nest_with "interchange" inner_rec) in
  Alcotest.(check bool) "interchange (=,<) refused PROVEN" true
    (r.Transform.verdict = Transform.Proven);
  check_contains "reason names the worksharing move"
    ~haystack:r.Transform.reason ~needle:"worksharing";
  (* tiling the same nest at factor 8 breaks the distance-1 chain *)
  let r = assess_one (nest_with "tile(8, 8)" inner_rec) in
  Alcotest.(check bool) "tile across a distance-1 recurrence refused"
    true
    (r.Transform.clause = "tile");
  (* an opaque subscript downgrades to MAY *)
  let opaque = "a[a[i * 64 + j] % 64] = i + j;" in
  let r = assess_one (nest_with "tile(8, 8)" opaque) in
  Alcotest.(check bool) "opaque subscript is MAY" true
    (r.Transform.verdict = Transform.May);
  (* composition on one directive is refused whole, not half-applied *)
  let r = assess_one (nest_with "tile(4, 4) unroll(2)" "a[i * 64 + j] = i;") in
  Alcotest.(check bool) "composition refused MAY" true
    (r.Transform.verdict = Transform.May && r.Transform.clause = "transform");
  (* a refusal strips the clause but keeps the loop intact *)
  match Transform.run (nest_with "interchange" inner_rec) with
  | None -> Alcotest.fail "refusal should still strip the clause"
  | Some src ->
      Alcotest.(check bool) "clause stripped" false
        (contains_sub ~haystack:src ~needle:"interchange");
      check_contains "loop body kept" ~haystack:src
        ~needle:"a[i * 64 + j - 1]"

let test_malformed_strip () =
  Transform.forget_warnings ();
  let src = nest_with "tile(0, 4)" "a[i * 64 + j] = i;" in
  (* malformed sizes: the clause is dropped with a warn-once
     diagnostic and the loop is left untouched *)
  (match Transform.run src with
   | None -> Alcotest.fail "malformed tile should strip its clause"
   | Some out ->
       Alcotest.(check bool) "tile clause dropped" false
         (contains_sub ~haystack:out ~needle:"tile(");
       Alcotest.(check bool) "no tile loops synthesised" false
         (contains_sub ~haystack:out ~needle:"__omp_t1"));
  (* oversized unroll factors are malformed too *)
  (match Transform.run (nest_with "unroll(256)" "a[i * 64 + j] = i;") with
   | None -> Alcotest.fail "oversized unroll should strip its clause"
   | Some out ->
       Alcotest.(check bool) "unroll clause dropped" false
         (contains_sub ~haystack:out ~needle:"unroll"));
  Transform.forget_warnings ()

(* ------------------------------------------------------------------ *)
(* Fixture files: the clean twin applies, the illegal twin refuses.    *)

let test_fixture_twins () =
  let applies name marker =
    match Transform.run ~name (fixture name) with
    | None -> Alcotest.failf "%s: transform did not apply" name
    | Some src -> check_contains name ~haystack:src ~needle:marker
  in
  applies "tile_stencil.zr" "__omp_t1";
  applies "interchange_colmajor.zr" "__omp_x1";
  let refuses name =
    let rs = Transform.assess (parse_ctx (fixture name)) in
    Alcotest.(check bool) (name ^ ": refused PROVEN") true
      (List.exists (fun r -> r.Transform.verdict = Transform.Proven) rs)
  in
  refuses "tile_stencil_illegal.zr";
  refuses "interchange_colmajor_illegal.zr";
  (* the analyzer surfaces refusals as advisory findings without
     touching the exit code *)
  let r =
    Zigomp.analyze ~name:"illegal.zr" (fixture "tile_stencil_illegal.zr")
  in
  Alcotest.(check int) "refusal never affects the verdict" 0
    (Zigomp.Checker.Report.exit_code r.Zigomp.Analyzer.report);
  Alcotest.(check bool) "advisory transform lint present" true
    (List.exists
       (fun (f : Zigomp.Checker.Report.finding) ->
         contains_sub ~haystack:f.Zigomp.Checker.Report.line
           ~needle:"refused")
       r.Zigomp.Analyzer.may)

let run_fixture ~threads ~backend name =
  Omprt.Api.set_num_threads threads;
  let p = Zigomp.compile ~backend ~name (fixture name) in
  match Zigomp.run_main p with
  | V.VInt n -> n
  | v -> Alcotest.failf "%s: expected an int, got %s" name (V.to_string v)

let test_collapse2_fixture () =
  (* sum of 0..59 doubled = 3540, on every backend and team size *)
  List.iter
    (fun backend ->
      List.iter
        (fun threads ->
          Alcotest.(check int)
            (Printf.sprintf "collapse2.zr (%d threads)" threads)
            3540
            (run_fixture ~threads ~backend "collapse2.zr"))
        [ 1; 4 ])
    [ `Ast; `Compiled; `Bytecode ]

(* ------------------------------------------------------------------ *)
(* Forced rewrite: the refused interchange, applied anyway, introduces
   exactly the race the refusal predicted — the checker observes it,
   while the honest (refused, clause-stripped) lowering stays clean.   *)

let forced_src =
  {|fn main() i64 {
    var a = alloc_i64(256);
    //$omp parallel shared(a)
    {
        var i: i64 = 0;
        //$omp for interchange
        while (i < 16) : (i += 1) {
            var j: i64 = 1;
            while (j < 16) : (j += 1) {
                a[i * 16 + j] = a[i * 16 + j - 1] + 1;
            }
        }
    }
    return a[255];
}
|}

let test_forced_rewrite_racy () =
  let honest =
    match Transform.run forced_src with Some s -> s | None -> forced_src
  in
  let clean = Zigomp.check ~name:"honest.zr" honest in
  Alcotest.(check bool) "refused lowering stays race-free" true
    (Zigomp.Checker.Report.clean clean);
  let forced =
    match Transform.run ~force:true forced_src with
    | Some s -> s
    | None -> Alcotest.fail "force should apply the interchange"
  in
  check_contains "interchange applied under force" ~haystack:forced
    ~needle:"__omp_x1";
  let report = Zigomp.check ~name:"forced.zr" forced in
  Alcotest.(check bool) "forced rewrite is racy" false
    (Zigomp.Checker.Report.clean report)

(* ------------------------------------------------------------------ *)
(* The roofline prediction hook.                                       *)

let test_predict () =
  let src = fixture "tile_stencil.zr" in
  match Transform.footprints (parse_ctx src) with
  | [ fp ] ->
      Alcotest.(check bool) "tiling shrinks the reuse working set" true
        (fp.Transform.fp_ws_after < fp.Transform.fp_ws_before);
      Alcotest.(check bool) "traversal bytes dominate both working sets"
        true
        (fp.Transform.fp_bytes >= fp.Transform.fp_ws_before);
      let cost =
        Zigomp.Model.Cost.make
          ~flops:(fp.Transform.fp_iters *. float_of_int fp.Transform.fp_accesses)
          ~bytes:fp.Transform.fp_bytes ()
      in
      let p =
        Zigomp.Simulator.Perfmodel.predict_tiling
          Zigomp.Simulator.Machine.archer2 ~active:1 ~cost
          ~ws_before:fp.Transform.fp_ws_before
          ~ws_after:fp.Transform.fp_ws_after
      in
      Alcotest.(check bool) "lower miss factor after tiling" true
        (p.Zigomp.Simulator.Perfmodel.miss_after
        < p.Zigomp.Simulator.Perfmodel.miss_before);
      Alcotest.(check bool) "higher arithmetic intensity after tiling"
        true
        (p.Zigomp.Simulator.Perfmodel.ai_after
        > p.Zigomp.Simulator.Perfmodel.ai_before);
      Alcotest.(check bool) "predicted speedup above 1" true
        (p.Zigomp.Simulator.Perfmodel.speedup > 1.0)
  | fps -> Alcotest.failf "expected one footprint, got %d" (List.length fps)

(* ------------------------------------------------------------------ *)
(* Differential property: for a family of clean 2-nests over integer
   arrays, the transformed program equals the untransformed one on
   every backend and team size, bit for bit.  The template's only
   dependence is the (0, 0) self-dependence on [out], so every clause
   in the pool is legal.                                               *)

let diff_program ~clause ~ni ~nj ~ca ~cb =
  Printf.sprintf
    {|fn kern(out: []i64, a: []i64) i64 {
    //$omp parallel shared(out, a)
    {
        var i: i64 = 0;
        //$omp for %s
        while (i < %d) : (i += 1) {
            var j: i64 = 0;
            while (j < %d) : (j += 1) {
                out[i * 16 + j] = out[i * 16 + j] + a[j * 16 + i] * %d + i * %d + j;
            }
        }
    }
    var s: i64 = 0;
    var t: i64 = 0;
    while (t < 256) : (t += 1) {
        s += out[t] * (t + 3);
    }
    return s;
}
|}
    clause ni nj ca cb

let diff_clauses =
  [ "tile(2, 2)"; "tile(4, 4)"; "tile(8, 8)"; "tile(3, 5)"; "tile(4)";
    "unroll(2)"; "unroll(3)"; "unroll(4)"; "interchange"; "collapse(2)" ]

let diff_gen =
  QCheck2.Gen.(
    let* clause = oneofl diff_clauses in
    let* ni = int_range 1 16 in
    let* nj = int_range 1 16 in
    let* ca = int_range (-3) 3 in
    let* cb = int_range 0 5 in
    let* seed = int_range 0 1000 in
    return (clause, ni, nj, ca, cb, seed))

let diff_run ~src ~backend ~threads ~seed =
  Omprt.Api.set_num_threads threads;
  let p = Zigomp.compile ~backend ~name:"diff.zr" src in
  let out = Array.init 256 (fun t -> t * 7 mod 23) in
  let a = Array.init 256 (fun t -> ((t * 13) + seed) mod 17) in
  match Zigomp.call p "kern" [ V.VIntArr out; V.VIntArr a ] with
  | V.VInt n -> n
  | v -> failwith ("unexpected " ^ V.to_string v)

let diff_prop (clause, ni, nj, ca, cb, seed) =
  let plain = diff_program ~clause:"" ~ni ~nj ~ca ~cb in
  let transformed = diff_program ~clause ~ni ~nj ~ca ~cb in
  let reference = diff_run ~src:plain ~backend:`Compiled ~threads:1 ~seed in
  List.for_all
    (fun backend ->
      List.for_all
        (fun threads ->
          diff_run ~src:transformed ~backend ~threads ~seed = reference
          && diff_run ~src:plain ~backend ~threads ~seed = reference)
        [ 1; 4 ])
    [ `Ast; `Compiled; `Bytecode ]

let differential_case =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:20
       ~name:
         "transformed == untransformed on ast/compiled/bytecode x \
          {1,4} threads"
       ~print:(fun (clause, ni, nj, ca, cb, seed) ->
         Printf.sprintf "clause=%S ni=%d nj=%d ca=%d cb=%d seed=%d"
           clause ni nj ca cb seed)
       diff_gen diff_prop)

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "golden rewrites (tile, interchange, unroll)"
      `Quick test_goldens;
    Alcotest.test_case "refusal verdicts and clause stripping" `Quick
      test_refusal_verdicts;
    Alcotest.test_case "malformed transform args strip cleanly" `Quick
      test_malformed_strip;
    Alcotest.test_case "fixture twins: clean applies, illegal refuses"
      `Quick test_fixture_twins;
    Alcotest.test_case "collapse(2) fixture agrees on every backend"
      `Quick test_collapse2_fixture;
    Alcotest.test_case "forced refused interchange is racy (checker)"
      `Quick test_forced_rewrite_racy;
    Alcotest.test_case "roofline tiling prediction" `Quick
      test_predict;
    differential_case ]

(* Test entry point: one alcotest binary covering every subsystem. *)

let () =
  Alcotest.run "zigomp"
    [ ("tokenizer", Test_tokenizer.suite);
      ("parser", Test_parser.suite);
      ("packed-clauses", Test_packed.suite);
      ("worksharing", Test_ws.suite);
      ("runtime", Test_runtime.suite);
      ("icv", Test_icv.suite);
      ("pool", Test_pool.suite);
      ("task", Test_task.suite);
      ("atomics", Test_atomics.suite);
      ("simulator", Test_sim.suite);
      ("sim-runtime", Test_simrt.suite);
      ("preprocessor", Test_preproc.suite);
      ("interpreter", Test_interp.suite);
      ("compile", Test_compile.suite);
      ("loop-edges", Test_loops_edge.suite);
      ("npb", Test_npb.suite);
      ("harness", Test_harness.suite);
      ("public-api", Test_zigomp.suite);
      ("zr-examples", Test_zr_examples.suite);
      ("pipeline-properties", Test_pipeline_prop.suite);
      ("vc", Test_vc.suite);
      ("check", Test_check.suite);
      ("analyze", Test_analyze.suite);
      ("npb-zr", Test_npb_zr.suite);
      ("task-diff", Test_task_diff.suite);
      ("bytecode", Test_bc.suite);
      ("transform", Test_transform.suite);
    ]

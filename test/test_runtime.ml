(* Runtime tests on real OCaml domains: fork/join, barriers, single,
   master, critical, locks, the ws_for schedules, and the CAS-loop
   reductions under genuine multi-thread contention. *)

open Omprt

let nt = 4  (* oversubscribed on this host; the runtime must not spin *)

let test_fork_runs_all_threads () =
  let seen = Array.make nt false in
  Team.fork ~num_threads:nt (fun ~tid -> seen.(tid) <- true);
  Alcotest.(check (array bool)) "every tid ran" (Array.make nt true) seen

let test_thread_ids () =
  let ids = Atomic.make [] in
  Omp.parallel ~num_threads:nt (fun () ->
      Atomics.cas_loop ids (fun l -> Omp.thread_num () :: l));
  Alcotest.(check (list int)) "distinct ids 0..nt-1"
    (List.init nt Fun.id)
    (List.sort compare (Atomic.get ids))

let test_num_threads_inside_outside () =
  Alcotest.(check int) "outside" 1 (Omp.num_threads ());
  let inside = Atomic.make 0 in
  Omp.parallel ~num_threads:3 (fun () ->
      if Omp.thread_num () = 0 then Atomic.set inside (Omp.num_threads ()));
  Alcotest.(check int) "inside" 3 (Atomic.get inside);
  Alcotest.(check int) "restored" 1 (Omp.num_threads ())

let test_nested_parallel () =
  (* nesting is disabled by default (max_active_levels = 1, as libomp);
     raise the limit so the inner region is genuinely active *)
  let saved = Api.get_max_active_levels () in
  Api.set_max_active_levels 2;
  Fun.protect ~finally:(fun () -> Api.set_max_active_levels saved)
  @@ fun () ->
  let total = Atomic.make 0 in
  Omp.parallel ~num_threads:2 (fun () ->
      Omp.parallel ~num_threads:2 (fun () ->
          Atomics.Int.add total 1));
  Alcotest.(check int) "2 x 2 executions" 4 (Atomic.get total)

let test_nested_parallel_serialised_by_default () =
  (* with the default max_active_levels = 1, the inner region runs on a
     team of one: 2 outer threads x 1 inner thread *)
  let total = Atomic.make 0 in
  let inner_sizes = Atomic.make [] in
  Omp.parallel ~num_threads:2 (fun () ->
      Omp.parallel ~num_threads:2 (fun () ->
          Atomics.cas_loop inner_sizes (fun l -> Omp.num_threads () :: l);
          Atomics.Int.add total 1));
  Alcotest.(check int) "2 x 1 executions" 2 (Atomic.get total);
  Alcotest.(check (list int)) "inner teams have one thread" [ 1; 1 ]
    (Atomic.get inner_sizes)

let test_barrier_ordering () =
  (* all pre-barrier increments visible after the barrier to all *)
  let before = Atomic.make 0 in
  let violations = Atomic.make 0 in
  Omp.parallel ~num_threads:nt (fun () ->
      Atomics.Int.add before 1;
      Omp.barrier ();
      if Atomic.get before <> nt then Atomics.Int.add violations 1);
  Alcotest.(check int) "no thread saw a partial pre-barrier state" 0
    (Atomic.get violations)

let test_barrier_reusable () =
  let log = Atomic.make [] in
  Omp.parallel ~num_threads:3 (fun () ->
      for round = 1 to 5 do
        Atomics.cas_loop log (fun l -> round :: l);
        Omp.barrier ()
      done);
  let counts = List.init 5 (fun r ->
      List.length (List.filter (( = ) (r + 1)) (Atomic.get log)))
  in
  Alcotest.(check (list int)) "3 arrivals per round" [ 3; 3; 3; 3; 3 ] counts

let test_single_runs_once_per_construct () =
  let a = Atomic.make 0 and b = Atomic.make 0 in
  Omp.parallel ~num_threads:nt (fun () ->
      Omp.single (fun () -> Atomics.Int.add a 1);
      Omp.single (fun () -> Atomics.Int.add b 1));
  Alcotest.(check int) "first single once" 1 (Atomic.get a);
  Alcotest.(check int) "second single once" 1 (Atomic.get b)

let test_master_only_thread0 () =
  let who = Atomic.make [] in
  Omp.parallel ~num_threads:nt (fun () ->
      Omp.master (fun () ->
          Atomics.cas_loop who (fun l -> Omp.thread_num () :: l)));
  Alcotest.(check (list int)) "only tid 0" [ 0 ] (Atomic.get who)

let test_critical_mutual_exclusion () =
  (* unprotected counter updated only inside critical: no lost updates *)
  let counter = ref 0 in
  Omp.parallel ~num_threads:nt (fun () ->
      for _ = 1 to 1000 do
        Omp.critical (fun () -> incr counter)
      done);
  Alcotest.(check int) "no lost updates" (nt * 1000) !counter

let test_named_criticals_are_distinct () =
  let l1 = Lock.critical_lock "cs_one" in
  let l2 = Lock.critical_lock "cs_two" in
  Alcotest.(check bool) "different names, different locks" true (l1 != l2);
  Alcotest.(check bool) "same name, same lock" true
    (Lock.critical_lock "cs_one" == l1)

let test_ws_for_static_covers () =
  let hits = Array.make 1000 0 in
  Omp.parallel ~num_threads:nt (fun () ->
      Omp.ws_for ~lo:0 ~hi:1000 (fun lo hi ->
          for i = lo to hi - 1 do hits.(i) <- hits.(i) + 1 done));
  Alcotest.(check bool) "every iteration exactly once" true
    (Array.for_all (( = ) 1) hits)

let test_ws_for_schedules_cover () =
  List.iter
    (fun sched ->
      let hits = Array.make 503 0 in
      Omp.parallel ~num_threads:nt (fun () ->
          Omp.ws_for ~sched ~lo:0 ~hi:503 (fun lo hi ->
              for i = lo to hi - 1 do
                ignore (Atomic.fetch_and_add (Atomic.make 0) 1);
                hits.(i) <- hits.(i) + 1
              done));
      Alcotest.(check bool)
        (Omp_model.Sched.to_string sched ^ " covers exactly once") true
        (Array.for_all (( = ) 1) hits))
    [ Omp_model.Sched.Static (Some 7);
      Omp_model.Sched.Dynamic 13;
      Omp_model.Sched.Guided 5;
      Omp_model.Sched.Auto ]

let test_ws_for_runtime_schedule () =
  Api.set_schedule (Omp_model.Sched.Dynamic 8);
  let hits = Array.make 100 0 in
  Omp.parallel ~num_threads:3 (fun () ->
      Omp.ws_for ~sched:Omp_model.Sched.Runtime ~lo:0 ~hi:100 (fun lo hi ->
          for i = lo to hi - 1 do hits.(i) <- hits.(i) + 1 done));
  Api.set_schedule (Omp_model.Sched.Static None);
  Alcotest.(check bool) "runtime schedule covers" true
    (Array.for_all (( = ) 1) hits)

let test_ws_for_empty_range () =
  let ran = Atomic.make 0 in
  Omp.parallel ~num_threads:nt (fun () ->
      Omp.ws_for ~lo:5 ~hi:5 (fun _ _ -> Atomics.Int.add ran 1));
  Alcotest.(check int) "no chunks on empty range" 0 (Atomic.get ran)

let test_nowait_loops_overlap () =
  (* two nowait dynamic loops back to back: a fast thread may enter loop
     2 while others drain loop 1 — both must still cover their spaces *)
  let h1 = Array.make 200 0 and h2 = Array.make 200 0 in
  Omp.parallel ~num_threads:nt (fun () ->
      Omp.ws_for ~nowait:true ~sched:(Omp_model.Sched.Dynamic 9) ~lo:0
        ~hi:200 (fun lo hi ->
          for i = lo to hi - 1 do
            ignore (Atomic.fetch_and_add (Atomic.make i) 1);
            h1.(i) <- h1.(i) + 1
          done);
      Omp.ws_for ~nowait:true ~sched:(Omp_model.Sched.Dynamic 7) ~lo:0
        ~hi:200 (fun lo hi ->
          for i = lo to hi - 1 do h2.(i) <- h2.(i) + 1 done));
  Alcotest.(check bool) "loop 1 covered" true (Array.for_all (( = ) 1) h1);
  Alcotest.(check bool) "loop 2 covered" true (Array.for_all (( = ) 1) h2)

let test_worker_exception_propagates () =
  Alcotest.(check bool) "worker failure reaches the master" true
    (try
       Omp.parallel ~num_threads:3 (fun () ->
           if Omp.thread_num () = 2 then failwith "boom");
       false
     with Team.Worker_failure (_, Failure msg) -> msg = "boom")

let test_locks () =
  let l = Api.init_lock () in
  Api.set_lock l;
  Alcotest.(check bool) "test_lock on held lock fails" false (Api.test_lock l);
  Api.unset_lock l;
  Alcotest.(check bool) "test_lock acquires a free lock" true (Api.test_lock l);
  Api.unset_lock l

let test_nest_lock () =
  let l = Api.init_nest_lock () in
  Api.set_nest_lock l;
  Api.set_nest_lock l;
  Alcotest.(check int) "depth 2" 2 (Lock.Nest.depth l);
  Api.unset_nest_lock l;
  Alcotest.(check int) "depth 1" 1 (Lock.Nest.depth l);
  Api.unset_nest_lock l;
  Alcotest.(check int) "released" 0 (Lock.Nest.depth l)

let test_icv_env_parsing () =
  Alcotest.(check bool) "schedule string parse" true
    (Omp_model.Sched.of_string "dynamic,16" = Some (Omp_model.Sched.Dynamic 16));
  Alcotest.(check bool) "guided default chunk" true
    (Omp_model.Sched.of_string "guided" = Some (Omp_model.Sched.Guided 1));
  Alcotest.(check bool) "static unchunked" true
    (Omp_model.Sched.of_string "static" = Some (Omp_model.Sched.Static None));
  Alcotest.(check bool) "garbage rejected" true
    (Omp_model.Sched.of_string "bogus,3" = None)

let test_kmp_sched_codes () =
  (* the libomp sched_type constants the dispatch protocol sends *)
  Alcotest.(check int) "static" 34
    (Omp_model.Sched.to_kmp (Omp_model.Sched.Static None));
  Alcotest.(check int) "static chunked" 33
    (Omp_model.Sched.to_kmp (Omp_model.Sched.Static (Some 4)));
  Alcotest.(check int) "dynamic" 35
    (Omp_model.Sched.to_kmp (Omp_model.Sched.Dynamic 1));
  Alcotest.(check int) "guided" 36
    (Omp_model.Sched.to_kmp (Omp_model.Sched.Guided 1));
  Alcotest.(check int) "runtime" 37 (Omp_model.Sched.to_kmp Omp_model.Sched.Runtime);
  Alcotest.(check int) "auto" 38 (Omp_model.Sched.to_kmp Omp_model.Sched.Auto)

let test_profile_aggregation () =
  Profile.reset ();
  Profile.enable ();
  Fun.protect ~finally:Profile.disable (fun () ->
      Omp.parallel ~num_threads:3 (fun () ->
          Omp.ws_for ~sched:(Omp_model.Sched.Dynamic 10) ~lo:0 ~hi:100
            (fun _ _ -> ());
          Omp.single (fun () -> ());
          Omp.critical (fun () -> ())));
  let snap = Profile.snapshot () in
  let find c =
    List.find_opt (fun s -> s.Profile.construct = c) snap
  in
  (match find Profile.Region with
   | Some r ->
       Alcotest.(check int) "one region" 1 r.Profile.count;
       Alcotest.(check bool) "region took time" true (r.Profile.total > 0.)
   | None -> Alcotest.fail "region not recorded");
  (match find Profile.Dispatch_claim with
   | Some r ->
       (* 10 chunks + one exhausted claim per thread *)
       Alcotest.(check int) "dispatch claims" 13 r.Profile.count
   | None -> Alcotest.fail "dispatch claims not recorded");
  (match find Profile.Single_claim with
   | Some r -> Alcotest.(check int) "one single winner" 1 r.Profile.count
   | None -> Alcotest.fail "single not recorded");
  Alcotest.(check bool) "report renders" true
    (String.length (Profile.report ()) > 0)

let test_profile_off_records_nothing () =
  Profile.reset ();
  Omp.parallel ~num_threads:2 (fun () -> Omp.barrier ());
  Alcotest.(check (list string)) "no aggregates while disabled" []
    (List.map
       (fun s -> Profile.construct_name s.Profile.construct)
       (Profile.snapshot ()))

let suite =
  [ Alcotest.test_case "fork runs every thread" `Quick
      test_fork_runs_all_threads;
    Alcotest.test_case "profile aggregation" `Quick test_profile_aggregation;
    Alcotest.test_case "profile off by default" `Quick
      test_profile_off_records_nothing;
    Alcotest.test_case "distinct thread ids" `Quick test_thread_ids;
    Alcotest.test_case "num_threads inside/outside" `Quick
      test_num_threads_inside_outside;
    Alcotest.test_case "nested parallel" `Quick test_nested_parallel;
    Alcotest.test_case "nested parallel serialised by default" `Quick
      test_nested_parallel_serialised_by_default;
    Alcotest.test_case "barrier orders memory" `Quick test_barrier_ordering;
    Alcotest.test_case "barrier reusable across phases" `Quick
      test_barrier_reusable;
    Alcotest.test_case "single runs once per construct" `Quick
      test_single_runs_once_per_construct;
    Alcotest.test_case "master is thread 0" `Quick test_master_only_thread0;
    Alcotest.test_case "critical mutual exclusion" `Quick
      test_critical_mutual_exclusion;
    Alcotest.test_case "named criticals" `Quick
      test_named_criticals_are_distinct;
    Alcotest.test_case "ws_for static coverage" `Quick test_ws_for_static_covers;
    Alcotest.test_case "ws_for all schedules cover" `Quick
      test_ws_for_schedules_cover;
    Alcotest.test_case "ws_for runtime schedule" `Quick
      test_ws_for_runtime_schedule;
    Alcotest.test_case "ws_for empty range" `Quick test_ws_for_empty_range;
    Alcotest.test_case "nowait loops overlap safely" `Quick
      test_nowait_loops_overlap;
    Alcotest.test_case "worker exceptions propagate" `Quick
      test_worker_exception_propagates;
    Alcotest.test_case "omp locks" `Quick test_locks;
    Alcotest.test_case "nestable locks" `Quick test_nest_lock;
    Alcotest.test_case "OMP_SCHEDULE parsing" `Quick test_icv_env_parsing;
    Alcotest.test_case "libomp sched_type codes" `Quick test_kmp_sched_codes;
  ]

(* Deferred tasking on the native runtime: work-stealing deques, task
   scheduling points (taskwait/barrier/region end), per-task ICV data
   environments, copyprivate broadcast — and the exception-safety
   regression for [single] (a raise in the claimed body used to strand
   teammates at the implied barrier forever). *)

open Omprt

(* Recursive fib over explicit tasks: the canonical irregular workload
   static partitioning cannot express. *)
let rec task_fib n =
  if n < 2 then n
  else begin
    let a = ref 0 and b = ref 0 in
    Omp.task (fun () -> a := task_fib (n - 1));
    Omp.task (fun () -> b := task_fib (n - 2));
    Omp.taskwait ();
    !a + !b
  end

let fib_expected = 987 (* fib 16 *)

let test_task_fib_parallel () =
  (* the only way work reaches tids 1..3 is stealing: every task is
     rooted in the single-claiming thread's deque.  Whether an idle
     worker wins a probe before the owner drains its own deque is up to
     the OS scheduler, so retry the region a few times — correctness is
     asserted on every attempt, migration on at least one *)
  let rec attempt tries =
    let result = ref 0 in
    let before = Profile.task_stats () in
    Omp.parallel ~num_threads:4 (fun () ->
        Omp.single (fun () -> result := task_fib 16));
    let after = Profile.task_stats () in
    Alcotest.(check int) "fib 16 over deferred tasks" fib_expected !result;
    Alcotest.(check bool) "tasks were spawned" true
      (after.Profile.tasks_spawned > before.Profile.tasks_spawned);
    if after.Profile.task_steals > before.Profile.task_steals then ()
    else if tries > 1 then attempt (tries - 1)
    else
      Alcotest.(check bool) "work migrated through steals" true
        (after.Profile.task_steals > before.Profile.task_steals)
  in
  attempt 8

let test_task_fib_serial_team () =
  (* nt=1: every task must execute undeferred at its creation point *)
  let result = ref 0 in
  let before = Profile.task_stats () in
  Omp.parallel ~num_threads:1 (fun () -> result := task_fib 12);
  let after = Profile.task_stats () in
  Alcotest.(check int) "fib 12 undeferred" 144 !result;
  Alcotest.(check int) "every spawn ran undeferred"
    (after.Profile.tasks_spawned - before.Profile.tasks_spawned)
    (after.Profile.tasks_undeferred - before.Profile.tasks_undeferred);
  Alcotest.(check int) "no steals on a team of one"
    before.Profile.task_steals after.Profile.task_steals

let test_task_outside_region_is_undeferred () =
  let ran = ref false in
  Omp.task (fun () -> ran := true);
  Alcotest.(check bool) "executed at the creation point" true !ran;
  Omp.taskwait () (* no-op outside a region; must not raise *)

let test_region_end_drains_tasks () =
  (* tasks spawned but never taskwaited: the implicit region-end
     scheduling point must complete them before the join *)
  let hits = Array.make 64 0 in
  Omp.parallel ~num_threads:4 (fun () ->
      Omp.single ~nowait:true (fun () ->
          for i = 0 to 63 do
            Omp.task (fun () -> hits.(i) <- hits.(i) + 1)
          done));
  Alcotest.(check bool) "every task ran exactly once" true
    (Array.for_all (( = ) 1) hits)

let test_barrier_is_a_scheduling_point () =
  (* all tasks are complete once any thread passes an explicit barrier *)
  let hits = Array.make 32 0 in
  let ok = Atomic.make true in
  Omp.parallel ~num_threads:4 (fun () ->
      if Omp.thread_num () = 0 then
        for i = 0 to 31 do
          Omp.task (fun () -> hits.(i) <- hits.(i) + 1)
        done;
      Omp.barrier ();
      if not (Array.for_all (( = ) 1) hits) then Atomic.set ok false);
  Alcotest.(check bool) "barrier waited for all tasks" true (Atomic.get ok)

let test_taskwait_waits_for_children_only () =
  let child_done = ref false in
  let seen_by_parent = ref false in
  Omp.parallel ~num_threads:2 (fun () ->
      if Omp.thread_num () = 0 then begin
        Omp.task (fun () -> child_done := true);
        Omp.taskwait ();
        seen_by_parent := !child_done
      end);
  Alcotest.(check bool) "taskwait returned after the child ran" true
    !seen_by_parent

let test_task_inherits_and_isolates_icvs () =
  (* the task's data environment snapshots the generating task's frame
     at creation; omp_set_* inside the task stays in the task *)
  let inherited = ref 0 in
  let after = ref 0 in
  Omp.parallel ~num_threads:2 (fun () ->
      if Omp.thread_num () = 0 then begin
        Api.set_num_threads 7;
        Omp.task (fun () ->
            inherited := Api.get_max_threads ();
            Api.set_num_threads 99);
        Omp.taskwait ();
        after := Api.get_max_threads ()
      end);
  Alcotest.(check int) "task inherited the creator's nthreads-var" 7
    !inherited;
  Alcotest.(check int) "the task's set_num_threads did not leak back" 7
    !after

let test_task_failure_propagates_as_worker_failure () =
  Alcotest.(check bool) "deferred task raise arrives as Worker_failure"
    true
    (try
       Omp.parallel ~num_threads:4 (fun () ->
           Omp.single (fun () ->
               Omp.task (fun () -> failwith "task boom");
               Omp.taskwait ()));
       false
     with Team.Worker_failure (_, Failure msg) -> msg = "task boom")

(* --- the single exception-safety regression ------------------------ *)

let test_single_body_raise_does_not_strand_teammates () =
  (* pre-PR: the claiming thread skipped the implied barrier on a raise,
     so the other three threads waited forever — this test hung *)
  Alcotest.(check bool) "raise inside single surfaces as Worker_failure"
    true
    (try
       Omp.parallel ~num_threads:4 (fun () ->
           Omp.single (fun () -> failwith "single boom"));
       false
     with Team.Worker_failure (_, Failure msg) -> msg = "single boom")

let test_single_nowait_raise_propagates () =
  (* no implied barrier to honour here: the failure just propagates out
     of the region body and surfaces at the join *)
  Alcotest.(check bool) "nowait single still propagates the failure" true
    (try
       Omp.parallel ~num_threads:2 (fun () ->
           Omp.single ~nowait:true (fun () -> failwith "nowait boom"));
       false
     with Team.Worker_failure (_, Failure msg) -> msg = "nowait boom")

(* --- copyprivate ---------------------------------------------------- *)

let test_copyprivate_broadcast () =
  let views = Array.make 4 0 in
  Omp.parallel ~num_threads:4 (fun () ->
      let x = ref 0 in
      (* the generated-code shape: split single + put/get around the
         implied barrier *)
      if Kmpc.single_begin () then begin
        x := 42;
        Kmpc.copyprivate_put !x;
        Kmpc.single_end ()
      end;
      Kmpc.barrier ();
      x := Kmpc.copyprivate_get ();
      views.(Omp.thread_num ()) <- !x);
  Alcotest.(check (array int)) "every thread received the claimer's value"
    [| 42; 42; 42; 42 |] views

let test_copyprivate_back_to_back_singles () =
  (* epoch keying: two singles in sequence must not cross wires *)
  let first = Array.make 2 0 and second = Array.make 2 0 in
  Omp.parallel ~num_threads:2 (fun () ->
      if Kmpc.single_begin () then begin
        Kmpc.copyprivate_put 1;
        Kmpc.single_end ()
      end;
      Kmpc.barrier ();
      first.(Omp.thread_num ()) <- Kmpc.copyprivate_get ();
      if Kmpc.single_begin () then begin
        Kmpc.copyprivate_put 2;
        Kmpc.single_end ()
      end;
      Kmpc.barrier ();
      second.(Omp.thread_num ()) <- Kmpc.copyprivate_get ());
  Alcotest.(check (array int)) "first broadcast" [| 1; 1 |] first;
  Alcotest.(check (array int)) "second broadcast" [| 2; 2 |] second

let suite =
  [ Alcotest.test_case "task fib at 4 threads (with steals)" `Quick
      test_task_fib_parallel;
    Alcotest.test_case "serial teams run tasks undeferred" `Quick
      test_task_fib_serial_team;
    Alcotest.test_case "tasks outside a region are undeferred" `Quick
      test_task_outside_region_is_undeferred;
    Alcotest.test_case "region end drains outstanding tasks" `Quick
      test_region_end_drains_tasks;
    Alcotest.test_case "barrier is a task scheduling point" `Quick
      test_barrier_is_a_scheduling_point;
    Alcotest.test_case "taskwait waits for direct children" `Quick
      test_taskwait_waits_for_children_only;
    Alcotest.test_case "task ICV frames inherit and isolate" `Quick
      test_task_inherits_and_isolates_icvs;
    Alcotest.test_case "task failure becomes Worker_failure" `Quick
      test_task_failure_propagates_as_worker_failure;
    Alcotest.test_case "single body raise cannot hang the team" `Quick
      test_single_body_raise_does_not_strand_teammates;
    Alcotest.test_case "single nowait raise propagates" `Quick
      test_single_nowait_raise_propagates;
    Alcotest.test_case "copyprivate broadcasts to the team" `Quick
      test_copyprivate_broadcast;
    Alcotest.test_case "copyprivate epochs do not cross" `Quick
      test_copyprivate_back_to_back_singles;
  ]

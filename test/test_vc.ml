(* Unit tests for the FastTrack-style vector clocks (Check.Vc) that
   drive both the happens-before race filter and the DPOR dependence
   relation.  The clocks are sparse: entries never written read as 0,
   which encodes "never synchronised with" — several tests pin that
   convention because both Race and Dpor lean on it. *)

module Vc = Zigomp.Checker.Vc

let test_fresh_reads_zero () =
  let v = Vc.create () in
  Alcotest.(check int) "entry 0" 0 (Vc.get v 0);
  Alcotest.(check int) "entry far past the hint" 0 (Vc.get v 1000);
  let small = Vc.create ~hint:1 () in
  Alcotest.(check int) "hint does not bound reads" 0 (Vc.get small 17)

let test_set_get_growth () =
  let v = Vc.create ~hint:2 () in
  Vc.set v 0 3;
  Vc.set v 9 5;
  Alcotest.(check int) "written entry" 3 (Vc.get v 0);
  Alcotest.(check int) "entry written past the hint" 5 (Vc.get v 9);
  Alcotest.(check int) "gap entries stay 0" 0 (Vc.get v 4)

let test_tick () =
  let v = Vc.create () in
  Vc.tick v 2;
  Alcotest.(check int) "first tick from absent" 1 (Vc.get v 2);
  Vc.tick v 2;
  Vc.tick v 2;
  Alcotest.(check int) "ticks accumulate" 3 (Vc.get v 2);
  Alcotest.(check int) "other entries untouched" 0 (Vc.get v 0)

let test_join_pointwise_max () =
  let a = Vc.create () and b = Vc.create () in
  Vc.set a 0 5;
  Vc.set a 1 1;
  Vc.set b 1 4;
  Vc.set b 7 2;
  Vc.join a b;
  Alcotest.(check int) "dst keeps its larger entry" 5 (Vc.get a 0);
  Alcotest.(check int) "src wins where larger" 4 (Vc.get a 1);
  Alcotest.(check int) "dst grows to cover src" 2 (Vc.get a 7);
  (* join is into dst only: src unchanged *)
  Alcotest.(check int) "src entry 0 unchanged" 0 (Vc.get b 0);
  Alcotest.(check int) "src entry 1 unchanged" 4 (Vc.get b 1)

let test_copy_independent () =
  let a = Vc.create () in
  Vc.set a 3 7;
  let b = Vc.copy a in
  Vc.tick b 3;
  Vc.set b 5 1;
  Alcotest.(check int) "copy saw the value" 8 (Vc.get b 3);
  Alcotest.(check int) "original unaffected by copy's tick" 7 (Vc.get a 3);
  Alcotest.(check int) "original unaffected by copy's growth" 0 (Vc.get a 5);
  Vc.tick a 3;
  Alcotest.(check int) "copy unaffected by original's tick" 8 (Vc.get b 3)

let test_covers () =
  let v = Vc.create () in
  Vc.set v 1 3;
  Alcotest.(check bool) "earlier epoch covered" true
    (Vc.covers v ~tid:1 ~clk:2);
  Alcotest.(check bool) "equal epoch covered" true
    (Vc.covers v ~tid:1 ~clk:3);
  Alcotest.(check bool) "later epoch not covered" false
    (Vc.covers v ~tid:1 ~clk:4);
  Alcotest.(check bool) "absent thread at clk 0 covered" true
    (Vc.covers v ~tid:42 ~clk:0);
  Alcotest.(check bool) "absent thread at clk 1 not covered" false
    (Vc.covers v ~tid:42 ~clk:1)

(* The fork discipline the scheduler relies on: the parent copies its
   clock to each child and then ticks itself, so the child covers
   everything before the fork but nothing the parent does after it.
   (A missing post-copy tick once made the parent's region-body events
   indistinguishable from the fork point — this pins the ordering.) *)
let test_fork_handoff () =
  let parent = Vc.create () in
  let ptid = 0 in
  Vc.tick parent ptid;
  (* parent did some pre-fork work at clk 1 *)
  let pre_fork = Vc.get parent ptid in
  let child = Vc.copy parent in
  Vc.tick parent ptid;
  (* parent's first post-fork event *)
  let post_fork = Vc.get parent ptid in
  Alcotest.(check bool) "child covers the parent's pre-fork work" true
    (Vc.covers child ~tid:ptid ~clk:pre_fork);
  Alcotest.(check bool) "child does not cover post-fork events" false
    (Vc.covers child ~tid:ptid ~clk:post_fork)

(* Release/acquire through a lock clock: the acquirer covers exactly
   what the releaser had published at release time. *)
let test_lock_edge () =
  let t0 = Vc.create () and t1 = Vc.create () in
  let lock = Vc.create () in
  Vc.tick t0 0;
  (* t0's protected write at (0, 1) *)
  Vc.join lock t0;
  Vc.tick t0 0;
  (* t0's unprotected write at (0, 2), after the release *)
  Vc.join t1 lock;
  Alcotest.(check bool) "acquirer covers the protected write" true
    (Vc.covers t1 ~tid:0 ~clk:1);
  Alcotest.(check bool) "acquirer does not cover the later write" false
    (Vc.covers t1 ~tid:0 ~clk:2)

let suite =
  [ Alcotest.test_case "fresh clocks read 0 everywhere" `Quick
      test_fresh_reads_zero;
    Alcotest.test_case "set/get grows on demand" `Quick test_set_get_growth;
    Alcotest.test_case "tick increments one entry" `Quick test_tick;
    Alcotest.test_case "join is pointwise max into dst" `Quick
      test_join_pointwise_max;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "covers is the epoch test" `Quick test_covers;
    Alcotest.test_case "fork hands off then ticks" `Quick test_fork_handoff;
    Alcotest.test_case "release/acquire edge" `Quick test_lock_edge;
  ]

(* The NPB kernels with their hot code in Zr (paper section IV), run
   through the interpreter pipeline against the official NPB
   verification values, plus checker passes over the same Zr sources.

   EP and IS run class W under all three backends.  CG class W runs on
   the staged-closure backend only (the tree walker takes minutes on
   it); backend agreement — including the bytecode tier — is covered
   by an exact-parity check on a small synthetic system instead. *)

module V = Interp.Value
module Checker = Zigomp.Checker

let verified name (r : Npb.Result.t) =
  match r.Npb.Result.verification with
  | Npb.Result.Verified -> ()
  | Npb.Result.Failed msg -> Alcotest.failf "%s: %s" name msg
  | Npb.Result.Unverifiable -> Alcotest.failf "%s: unverifiable" name

(* ---- EP / IS class W, both backends ------------------------------- *)

let test_ep_w backend () =
  verified "EP[zr] class W"
    (Harness.Zr_ep.run ~backend ~cls:Npb.Classes.W ~nthreads:4 ())

let test_is_w backend () =
  verified "IS[zr] class W"
    (Harness.Zr_is.run ~backend ~cls:Npb.Classes.W ~nthreads:4 ())

(* ---- CG ----------------------------------------------------------- *)

let test_cg_w_compiled () =
  verified "CG[zr/compiled] class W"
    (Harness.Zr_cg.run ~backend:`Compiled ~cls:Npb.Classes.W ~nthreads:4 ())

(* A small SPD system solved through conj_grad under both backends must
   agree bit for bit: same preprocessed program, same runtime.  The
   tridiagonal [-1, 4, -1] system has n distinct eigenvalues, so the 25
   CG iterations never converge exactly (an exactly-solved system makes
   the next step divide 0/0). *)
let spd_args n =
  let rows = Array.init n (fun i ->
      List.filter (fun (j, _) -> j >= 0 && j < n)
        [ (i - 1, -1.0); (i, 4.0); (i + 1, -1.0) ])
  in
  let rowstr = Array.make (n + 1) 0 in
  Array.iteri (fun i r -> rowstr.(i + 1) <- rowstr.(i) + List.length r) rows;
  let nnz = rowstr.(n) in
  let colidx = Array.make nnz 0 in
  let a = Array.make nnz 0. in
  Array.iteri
    (fun i r ->
      List.iteri
        (fun k (j, v) ->
          colidx.(rowstr.(i) + k) <- j;
          a.(rowstr.(i) + k) <- v)
        r)
    rows;
  let x = Array.make n 1.0 in
  let alloc () = Array.make n 0. in
  [ V.VInt n; V.VIntArr rowstr; V.VIntArr colidx; V.VFloatArr a;
    V.VFloatArr x; V.VFloatArr (alloc ()); V.VFloatArr (alloc ());
    V.VFloatArr (alloc ()); V.VFloatArr (alloc ()) ]

let rnorm_of name = function
  | V.VFloat f -> f
  | v -> Alcotest.failf "%s: expected float, got %s" name (V.to_string v)

let test_cg_backend_parity () =
  Omprt.Api.set_num_threads 4;
  let n = 64 in
  let compiled =
    rnorm_of "compiled" (Harness.Zr_cg.load_conj_grad `Compiled (spd_args n))
  in
  let ast =
    rnorm_of "ast" (Harness.Zr_cg.load_conj_grad `Ast (spd_args n))
  in
  let bytecode =
    rnorm_of "bytecode" (Harness.Zr_cg.load_conj_grad `Bytecode (spd_args n))
  in
  Alcotest.(check (float 0.)) "bit-identical rnorm across backends"
    compiled ast;
  Alcotest.(check (float 0.)) "bit-identical rnorm under the bytecode tier"
    compiled bytecode;
  Alcotest.(check bool)
    (Printf.sprintf "near-converged, finite rnorm (%g)" compiled)
    true
    (Float.is_finite compiled && compiled < 1e-6)

(* ---- checker passes over the NPB Zr sources ----------------------- *)

let assert_clean what (r : Checker.Report.t) =
  Alcotest.(check (list string)) (what ^ ": no checker findings") []
    (List.map
       (fun (f : Checker.Report.finding) -> f.Checker.Report.line)
       r.Checker.Report.findings)

(* Reduced schedule sets: the cooperative vector-clocked interpreter
   traces every access, so the checked problems are small — the
   happens-before structure is identical at any size. *)
let cfg ~schedules ~sync_sweep =
  (* the kernels pin the sampled behaviour; the DPOR corpus covers them
     systematically (see Corpus.kernel_sources) *)
  { Checker.nthreads = 4; schedules; seed = 42; sync_sweep; lint = true;
    exploration = Checker.Sampled }

let test_check_cg () =
  let entry prog =
    ignore (Interp.call prog "conj_grad" (spd_args 16))
  in
  assert_clean "conj_grad.zr"
    (Checker.check_run ~name:"conj_grad.zr"
       ~config:(cfg ~schedules:1 ~sync_sweep:false)
       ~source:Harness.Zr_cg.conj_grad_src ~entry ())

let test_check_ep () =
  Harness.Zr_ep.with_hosts (fun () ->
      let entry prog =
        let sums = Array.make 2 0. in
        let q = Array.make Npb.Ep.nq 0. in
        ignore
          (Interp.call prog "ep_main" (Harness.Zr_ep.args ~nn:4 sums q))
      in
      assert_clean "ep_main.zr"
        (Checker.check_run ~name:"ep_main.zr"
           ~config:(cfg ~schedules:1 ~sync_sweep:true)
           ~source:Harness.Zr_ep.src ~entry ()))

let test_check_is () =
  (* a shrunken problem: 1024 keys, 16 buckets, 2 iterations *)
  let p =
    { Npb.Classes.Is.cls = Npb.Classes.S; total_keys_log2 = 10;
      max_key_log2 = 7; num_buckets_log2 = 4; max_iterations = 2 }
  in
  Harness.Zr_is.with_hosts (fun () ->
      let entry prog =
        let d = Harness.Zr_is.make_data p ~nthreads:4 in
        ignore
          (Interp.call prog "is_rank"
             (Harness.Zr_is.rank_args d ~itlo:1
                ~ithi:p.Npb.Classes.Is.max_iterations))
      in
      assert_clean "is_rank.zr"
        (Checker.check_run ~name:"is_rank.zr"
           ~config:(cfg ~schedules:1 ~sync_sweep:true)
           ~source:Harness.Zr_is.src ~entry ()))

let suite =
  [ Alcotest.test_case "EP class W (compiled) verifies" `Slow
      (test_ep_w `Compiled);
    Alcotest.test_case "EP class W (ast) verifies" `Slow (test_ep_w `Ast);
    Alcotest.test_case "EP class W (bytecode) verifies" `Slow
      (test_ep_w `Bytecode);
    Alcotest.test_case "IS class W (compiled) verifies" `Quick
      (test_is_w `Compiled);
    Alcotest.test_case "IS class W (ast) verifies" `Quick (test_is_w `Ast);
    Alcotest.test_case "IS class W (bytecode) verifies" `Quick
      (test_is_w `Bytecode);
    Alcotest.test_case "CG class W (compiled) verifies" `Slow
      test_cg_w_compiled;
    Alcotest.test_case "CG backends agree bit-for-bit" `Quick
      test_cg_backend_parity;
    Alcotest.test_case "checker: conj_grad.zr is clean" `Quick
      test_check_cg;
    Alcotest.test_case "checker: ep_main.zr is clean" `Quick test_check_ep;
    Alcotest.test_case "checker: is_rank.zr is clean" `Quick test_check_is;
  ]

(* The [zrc --check] race detector, end to end: the racy fixtures under
   examples/zr/racy must each produce findings that name both
   conflicting source locations, their race-free twins under
   examples/zr/clean (and the stock examples) must come back clean, and
   a fixed configuration must be deterministic across runs.  The
   fixture files are build dependencies of the test (see test/dune). *)

module Checker = Zigomp.Checker
module Report = Checker.Report

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let examples_dir =
  (* the test binary runs in _build/default/test *)
  Filename.concat (Filename.concat ".." "examples") "zr"

let config ?(schedules = 3) ?(sync_sweep = true) () =
  (* the historical tests pin the sampled-schedule behaviour *)
  { Checker.nthreads = 4; schedules; seed = 42; sync_sweep; lint = true;
    exploration = Checker.Sampled }

let dpor_config ?(nthreads = 2) ?(max_execs = 256) ?(preempt_bound = 2) () =
  { Checker.nthreads; schedules = 3; seed = 42; sync_sweep = true;
    lint = true; exploration = Checker.Dpor { max_execs; preempt_bound } }

let check_file ?config:(cfg = config ()) name =
  let path = Filename.concat examples_dir name in
  Zigomp.check ~name ~config:cfg (read_file path)

let lines_of (r : Report.t) =
  List.map (fun (f : Report.finding) -> f.Report.line) r.Report.findings

let contains = Astring_contains.contains

(* ---- racy fixtures ------------------------------------------------ *)

(* Every race line must cite both conflicting accesses, each with a
   line:col position: "race v: <rw>@l:c vs <rw>@l:c :: ...". *)
let both_locations line =
  match String.index_opt line '@' with
  | None -> false
  | Some i ->
      contains line " vs "
      && String.index_from_opt line (i + 1) '@' <> None

let test_racy_fixtures () =
  List.iter
    (fun name ->
      let r = check_file (Filename.concat "racy" name) in
      Alcotest.(check bool) (name ^ ": reported") false (Report.clean r);
      let races = Report.races r in
      Alcotest.(check bool) (name ^ ": at least one race") true
        (List.length races >= 1);
      List.iter
        (fun (f : Report.finding) ->
          Alcotest.(check bool)
            (name ^ ": both locations in " ^ f.Report.line)
            true
            (both_locations f.Report.line))
        races)
    [ "missing_reduction.zr"; "shared_counter.zr"; "nowait_useafter.zr";
      "task_no_taskwait.zr" ]

let test_reduction_suggestion () =
  let r = check_file "racy/missing_reduction.zr" in
  Alcotest.(check bool) "suggests reduction(+: s)" true
    (List.exists (fun l -> contains l "suggest reduction(+: s)")
       (lines_of r))

let test_nowait_lint () =
  let r = check_file "racy/nowait_useafter.zr" in
  Alcotest.(check bool) "dynamic race on q" true
    (List.exists
       (fun (f : Report.finding) ->
         contains f.Report.line "race q")
       (Report.races r));
  Alcotest.(check bool) "nowait-dependent-read lint" true
    (List.exists (fun l -> contains l "nowait-dependent-read") (lines_of r))

(* ---- clean programs ----------------------------------------------- *)

let test_clean_twins () =
  List.iter
    (fun name ->
      let r = check_file (Filename.concat "clean" name) in
      Alcotest.(check (list string)) (name ^ ": no findings") []
        (lines_of r))
    [ "reduction.zr"; "atomic_counter.zr"; "nowait_barrier.zr";
      "task_taskwait.zr" ]

let test_stock_examples_clean () =
  (* reduced schedule set to keep the test quick; the CI job runs the
     full default configuration over every example *)
  let cfg = config ~schedules:1 ~sync_sweep:false () in
  List.iter
    (fun name ->
      let r = check_file ~config:cfg name in
      Alcotest.(check (list string)) (name ^ ": no findings") []
        (lines_of r))
    [ "histogram.zr"; "jacobi.zr" ]

let test_mandelbrot_clean () =
  let cfg = config ~schedules:1 ~sync_sweep:false () in
  let r = check_file ~config:cfg "mandelbrot.zr" in
  Alcotest.(check (list string)) "mandelbrot.zr: no findings" []
    (lines_of r)

(* ---- lint-only sources -------------------------------------------- *)

let divergent_src = {|
fn main() i64 {
    var n: i64 = 8;
    //$omp parallel firstprivate(n)
    {
        if (omp.get_thread_num() == 0) {
            //$omp barrier
            n = 1;
        }
    }
    return 0;
}
|}

let test_divergent_barrier () =
  let r = Zigomp.check ~name:"divergent.zr" ~config:(config ()) divergent_src in
  let ls = lines_of r in
  Alcotest.(check bool) "divergent-barrier lint" true
    (List.exists (fun l -> contains l "divergent-barrier") ls);
  Alcotest.(check bool) "dynamic divergence observed" true
    (List.exists (fun l -> contains l "divergence") ls)

let default_none_src = {|
fn main() i64 {
    var n: i64 = 4;
    var s: i64 = 0;
    //$omp parallel default(none) shared(s)
    {
        //$omp critical
        { s = s + n; }
    }
    return s;
}
|}

let test_default_none_lint () =
  let r =
    Zigomp.check ~name:"defnone.zr" ~config:(config ()) default_none_src
  in
  Alcotest.(check bool) "default-none lint names the variable" true
    (List.exists
       (fun l -> contains l "default-none" && contains l "n")
       (lines_of r));
  (* static finding: nothing executes *)
  Alcotest.(check int) "no schedules explored" 0 r.Report.schedules

(* ---- determinism -------------------------------------------------- *)

let test_deterministic () =
  let once () = Report.to_string (check_file "racy/shared_counter.zr") in
  Alcotest.(check string) "identical report across two runs" (once ())
    (once ())

(* ---- DPOR exploration --------------------------------------------- *)

let executions (r : Report.t) =
  match r.Report.exploration with
  | Some (Report.Complete { executions }) -> executions
  | Some (Report.Bounded { executions; _ }) -> executions
  | _ -> 0

let is_complete (r : Report.t) =
  match r.Report.exploration with
  | Some (Report.Complete _) -> true
  | _ -> false

let is_systematic (r : Report.t) =
  match r.Report.exploration with
  | Some (Report.Complete _) | Some (Report.Bounded _) -> true
  | _ -> false

(* Every racy fixture must be caught by the systematic search too, with
   an honest verdict (COMPLETE, or BOUNDED when the budget truncates). *)
let test_dpor_racy_fixtures () =
  List.iter
    (fun name ->
      let cfg = dpor_config ~max_execs:64 () in
      let r = check_file ~config:cfg (Filename.concat "racy" name) in
      Alcotest.(check bool) (name ^ ": race found under DPOR") true
        (Report.races r <> []);
      Alcotest.(check bool) (name ^ ": systematic verdict") true
        (is_systematic r))
    [ "missing_reduction.zr"; "shared_counter.zr"; "nowait_useafter.zr";
      "task_no_taskwait.zr" ]

(* The race-free twins must come back COMPLETE and clean: the reduced
   interleaving space is exhausted, not merely sampled, at both 2 and 3
   threads. *)
let test_dpor_clean_twins_complete () =
  List.iter
    (fun nthreads ->
      List.iter
        (fun name ->
          let cfg = dpor_config ~nthreads () in
          let r = check_file ~config:cfg (Filename.concat "clean" name) in
          let label = Printf.sprintf "%s at %d threads" name nthreads in
          Alcotest.(check (list string)) (label ^ ": no findings") []
            (lines_of r);
          Alcotest.(check bool) (label ^ ": COMPLETE") true (is_complete r))
        [ "reduction.zr"; "atomic_counter.zr"; "nowait_barrier.zr";
          "task_taskwait.zr" ])
    [ 2; 3 ]

(* The regression the sampler can never catch: hidden_handoff.zr only
   races when thread 0 wins a critical-section handoff, an order the
   seven cost-based schedules provably never execute (thread 0 pays 32
   traced writes before its acquire).  DPOR must find it; the sampler
   must stay quiet; the lock-ordered twin must be COMPLETE-clean. *)
let test_dpor_hidden_handoff () =
  let sampled = check_file ~config:(config ()) "dpor/hidden_handoff.zr" in
  Alcotest.(check (list string)) "sampled schedules miss the race" []
    (lines_of sampled);
  let r = check_file ~config:(dpor_config ()) "dpor/hidden_handoff.zr" in
  Alcotest.(check bool) "DPOR reports the race on data" true
    (List.exists
       (fun (f : Report.finding) -> contains f.Report.line "race data")
       (Report.races r));
  Alcotest.(check bool) "and the search still completes" true
    (is_complete r);
  let twin = check_file ~config:(dpor_config ()) "dpor/hidden_handoff_clean.zr" in
  Alcotest.(check (list string)) "lock-ordered twin is clean" []
    (lines_of twin);
  Alcotest.(check bool) "twin COMPLETE" true (is_complete twin)

(* Same seed, same program, same budget: identical report text and
   identical execution counts.  The whole engine — replay, backtrack-set
   computation, frontier order — must be deterministic. *)
let test_dpor_deterministic () =
  let once name =
    let r = check_file ~config:(dpor_config ~max_execs:64 ()) name in
    (Report.to_string r, executions r)
  in
  List.iter
    (fun name ->
      let s1, n1 = once name and s2, n2 = once name in
      Alcotest.(check string) (name ^ ": identical report") s1 s2;
      Alcotest.(check int) (name ^ ": identical execution count") n1 n2;
      Alcotest.(check bool) (name ^ ": explored something") true (n1 >= 1))
    [ "racy/shared_counter.zr"; "dpor/hidden_handoff.zr" ]

(* Exit-code discipline: findings -> 2; a clean but truncated search is
   only a partial proof -> 1; a clean COMPLETE (or sampled) run -> 0. *)
let test_dpor_exit_codes () =
  let code ?config:(cfg = dpor_config ()) name =
    Report.exit_code (check_file ~config:cfg name)
  in
  Alcotest.(check int) "COMPLETE clean -> 0" 0 (code "clean/reduction.zr");
  Alcotest.(check int) "findings -> 2" 2 (code "dpor/hidden_handoff.zr");
  Alcotest.(check int) "BOUNDED clean -> 1" 1
    (code
       ~config:(dpor_config ~nthreads:3 ~max_execs:4 ())
       "clean/atomic_counter.zr");
  Alcotest.(check int) "sampled clean -> 0" 0
    (code ~config:(config ()) "clean/reduction.zr")

(* ---- differential property: DPOR vs sampling ---------------------- *)

module G = QCheck2.Gen

(* Small random parallel programs over two shared counters: every
   statement template either races, synchronises, or is gated to a
   single thread.  The SPMD body keeps barriers convergent. *)
type op =
  | Plain of string           (* v = v + 1;               racy rmw  *)
  | Crit of string            (* critical { v = v + 1; }  ordered   *)
  | Atomic of string          (* atomic v += 1;           commuting *)
  | Gated of string * int     (* one thread writes        *)
  | Copyv of string * string  (* dst = src;               read+write *)
  | Barrier

let render_op = function
  | Plain v -> Printf.sprintf "        %s = %s + 1;" v v
  | Crit v ->
      Printf.sprintf "        //$omp critical\n        { %s = %s + 1; }" v v
  | Atomic v -> Printf.sprintf "        //$omp atomic\n        %s += 1;" v
  | Gated (v, t) ->
      Printf.sprintf "        if (omp.get_thread_num() == %d) { %s = %s + 1; }"
        t v v
  | Copyv (d, s) -> Printf.sprintf "        %s = %s;" d s
  | Barrier -> "        //$omp barrier"

let op_gen =
  let var = G.oneofl [ "x"; "y" ] in
  G.oneof
    [ G.map (fun v -> Plain v) var;
      G.map (fun v -> Crit v) var;
      G.map (fun v -> Atomic v) var;
      G.map2 (fun v t -> Gated (v, t)) var (G.int_range 0 1);
      G.map2 (fun d s -> Copyv (d, s)) var var;
      G.pure Barrier ]

let program_gen =
  G.map
    (fun ops ->
      Printf.sprintf
        "fn main() i64 {\n\
        \    var x: i64 = 0;\n\
        \    var y: i64 = 0;\n\
        \    //$omp parallel shared(x, y)\n\
        \    {\n\
         %s\n\
        \    }\n\
        \    return x + y;\n\
         }\n"
        (String.concat "\n" (List.map render_op ops)))
    (G.list_size (G.int_range 2 4) op_gen)

let race_ids r =
  List.sort_uniq compare
    (List.map (fun (f : Report.finding) -> f.Report.id) (Report.races r))

(* When the DPOR search completes, it has covered every Mazurkiewicz
   trace class — so it must report (at least) every race any sampled
   schedule can observe.  In particular COMPLETE + clean means the
   sampler is provably quiet.  A BOUNDED run makes no containment
   claim, so those cases pass vacuously. *)
let prop_dpor_superset =
  QCheck2.Test.make ~name:"DPOR findings contain sampled findings" ~count:25
    ~print:(fun s -> s) program_gen
    (fun src ->
      let sampled_cfg =
        { Checker.nthreads = 2; schedules = 3; seed = 42; sync_sweep = true;
          lint = true; exploration = Checker.Sampled }
      in
      let sampled = Zigomp.check ~name:"rand.zr" ~config:sampled_cfg src in
      let dpor =
        Zigomp.check ~name:"rand.zr" ~config:(dpor_config ~max_execs:128 ())
          src
      in
      (not (is_complete dpor))
      || List.for_all
           (fun id -> List.mem id (race_ids dpor))
           (race_ids sampled))

(* ---- corpus batch mode -------------------------------------------- *)

module Corpus = Zigomp.Corpus

let test_corpus_check_clean () =
  let dir = Filename.concat examples_dir "clean" in
  let c =
    Corpus.run ~config:(dpor_config ()) ~kernels:false ~mode:Corpus.Mcheck
      ~dir ()
  in
  Alcotest.(check int) "six entries" 6 (List.length c.Corpus.entries);
  Alcotest.(check int) "clean corpus exits 0" 0 c.Corpus.exit;
  Alcotest.(check bool) "executions summed" true (c.Corpus.total_execs >= 3);
  Alcotest.(check bool) "summary renders" true
    (contains (Corpus.summary c) "6 entries");
  Alcotest.(check bool) "json carries the schema" true
    (contains (Corpus.to_json c) "zigomp-corpus/1")

let test_corpus_check_racy_exit () =
  let dir = Filename.concat examples_dir "dpor" in
  let c =
    Corpus.run ~config:(dpor_config ()) ~kernels:false ~mode:Corpus.Mcheck
      ~dir ()
  in
  Alcotest.(check int) "two entries" 2 (List.length c.Corpus.entries);
  Alcotest.(check int) "racy member dominates the exit" 2 c.Corpus.exit

let test_corpus_analyze () =
  let dir = Filename.concat examples_dir "racy" in
  let c = Corpus.run ~kernels:false ~mode:Corpus.Manalyze ~dir () in
  Alcotest.(check bool) "at least three entries" true
    (List.length c.Corpus.entries >= 3);
  Alcotest.(check int) "proven findings exit 2" 2 c.Corpus.exit;
  Alcotest.(check int) "no dynamic executions in analyze mode" 0
    c.Corpus.total_execs

(* A corpus pointed at a directory with no fixtures must raise, not
   return an empty (vacuously clean) report; a missing directory must
   produce a message naming it. *)
let test_corpus_empty_dir_errors () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "zigomp_empty" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (match Corpus.run ~kernels:false ~mode:Corpus.Manalyze ~dir () with
   | _ -> Alcotest.fail "empty corpus dir must raise"
   | exception Failure msg ->
       Alcotest.(check bool) "message names the directory" true
         (contains msg dir);
       Alcotest.(check bool) "message says no fixtures" true
         (contains msg "no .zr fixtures"))

let test_corpus_missing_dir_errors () =
  let dir = "/nonexistent/zigomp_corpus" in
  (match Corpus.run ~kernels:false ~mode:Corpus.Manalyze ~dir () with
   | _ -> Alcotest.fail "missing corpus dir must raise"
   | exception Failure msg ->
       Alcotest.(check bool) "message says the dir is unreadable" true
         (contains msg "cannot read"));
  (* check mode shares the same hard errors *)
  match Corpus.run ~kernels:false ~mode:Corpus.Mcheck ~dir () with
  | _ -> Alcotest.fail "missing corpus dir must raise in check mode"
  | exception Failure _ -> ()

(* --no-static surfaces raw dynamic findings per entry: every
   statically PROVEN race over the racy fixtures must appear among the
   same entry's unmerged DPOR findings (the CI subset assertion, in
   process). *)
let test_corpus_no_static_subset () =
  let dir = Filename.concat examples_dir "racy" in
  let st = Corpus.run ~kernels:false ~mode:Corpus.Manalyze ~dir () in
  let dyn =
    Corpus.run ~config:(dpor_config ()) ~kernels:false ~no_static:true
      ~mode:Corpus.Mcheck ~dir ()
  in
  List.iter2
    (fun (se : Corpus.entry) (de : Corpus.entry) ->
      Alcotest.(check string) "entries line up" se.Corpus.path
        de.Corpus.path;
      let dyn_ids =
        List.map
          (fun (f : Report.finding) -> f.Report.id)
          de.Corpus.report.Report.findings
      in
      List.iter
        (fun (f : Report.finding) ->
          if
            f.Report.verdict = Some Report.Proven
            && (f.Report.kind = Report.Race || f.Report.kind = Report.Dep)
          then
            Alcotest.(check bool)
              (se.Corpus.path ^ ": " ^ f.Report.id ^ " DPOR-observed")
              true
              (List.mem f.Report.id dyn_ids))
        se.Corpus.report.Report.findings)
    st.Corpus.entries dyn.Corpus.entries

(* --preempt-bound alongside --sampled: the CLI must diagnose the
   no-effect combination instead of silently dropping the bound. *)
let test_sampled_bound_warning () =
  (match Checker.no_effect_warning ~sampled:true ~preempt_bound:(Some 3) with
   | Some msg ->
       Alcotest.(check bool) "warning names the flag" true
         (contains msg "--preempt-bound 3");
       Alcotest.(check bool) "warning names the mode" true
         (contains msg "--sampled")
   | None -> Alcotest.fail "sampled + explicit bound must warn");
  Alcotest.(check bool) "no warning without the flag" true
    (Checker.no_effect_warning ~sampled:true ~preempt_bound:None = None);
  Alcotest.(check bool) "no warning under DPOR" true
    (Checker.no_effect_warning ~sampled:false ~preempt_bound:(Some 3) = None)

let suite =
  [ Alcotest.test_case "racy fixtures report both locations" `Quick
      test_racy_fixtures;
    Alcotest.test_case "missing reduction is suggested as the fix" `Quick
      test_reduction_suggestion;
    Alcotest.test_case "nowait use-after: race + lint" `Quick
      test_nowait_lint;
    Alcotest.test_case "race-free twins are clean" `Quick test_clean_twins;
    Alcotest.test_case "stock examples are clean" `Slow
      test_stock_examples_clean;
    Alcotest.test_case "mandelbrot is clean" `Slow test_mandelbrot_clean;
    Alcotest.test_case "thread-id-gated barrier diverges" `Quick
      test_divergent_barrier;
    Alcotest.test_case "default(none) missing capture" `Quick
      test_default_none_lint;
    Alcotest.test_case "fixed seed is deterministic" `Quick
      test_deterministic;
    Alcotest.test_case "racy fixtures race under DPOR" `Quick
      test_dpor_racy_fixtures;
    Alcotest.test_case "clean twins COMPLETE under DPOR" `Slow
      test_dpor_clean_twins_complete;
    Alcotest.test_case "DPOR finds the sampler-proof race" `Quick
      test_dpor_hidden_handoff;
    Alcotest.test_case "DPOR search is deterministic" `Quick
      test_dpor_deterministic;
    Alcotest.test_case "exit codes: 0/1/2 by verdict" `Quick
      test_dpor_exit_codes;
    QCheck_alcotest.to_alcotest prop_dpor_superset;
    Alcotest.test_case "corpus: clean dir is clean" `Slow
      test_corpus_check_clean;
    Alcotest.test_case "corpus: exit is the max member exit" `Quick
      test_corpus_check_racy_exit;
    Alcotest.test_case "corpus: analyze mode" `Quick test_corpus_analyze;
    Alcotest.test_case "corpus: empty dir errors" `Quick
      test_corpus_empty_dir_errors;
    Alcotest.test_case "corpus: missing dir errors" `Quick
      test_corpus_missing_dir_errors;
    Alcotest.test_case "corpus: --no-static keeps PROVEN ids observable"
      `Slow test_corpus_no_static_subset;
    Alcotest.test_case "sampled + preempt-bound warns" `Quick
      test_sampled_bound_warning;
  ]

(* The [zrc --check] race detector, end to end: the racy fixtures under
   examples/zr/racy must each produce findings that name both
   conflicting source locations, their race-free twins under
   examples/zr/clean (and the stock examples) must come back clean, and
   a fixed configuration must be deterministic across runs.  The
   fixture files are build dependencies of the test (see test/dune). *)

module Checker = Zigomp.Checker
module Report = Checker.Report

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let examples_dir =
  (* the test binary runs in _build/default/test *)
  Filename.concat (Filename.concat ".." "examples") "zr"

let config ?(schedules = 3) ?(sync_sweep = true) () =
  { Checker.nthreads = 4; schedules; seed = 42; sync_sweep; lint = true }

let check_file ?config:(cfg = config ()) name =
  let path = Filename.concat examples_dir name in
  Zigomp.check ~name ~config:cfg (read_file path)

let lines_of (r : Report.t) =
  List.map (fun (f : Report.finding) -> f.Report.line) r.Report.findings

let contains = Astring_contains.contains

(* ---- racy fixtures ------------------------------------------------ *)

(* Every race line must cite both conflicting accesses, each with a
   line:col position: "race v: <rw>@l:c vs <rw>@l:c :: ...". *)
let both_locations line =
  match String.index_opt line '@' with
  | None -> false
  | Some i ->
      contains line " vs "
      && String.index_from_opt line (i + 1) '@' <> None

let test_racy_fixtures () =
  List.iter
    (fun name ->
      let r = check_file (Filename.concat "racy" name) in
      Alcotest.(check bool) (name ^ ": reported") false (Report.clean r);
      let races = Report.races r in
      Alcotest.(check bool) (name ^ ": at least one race") true
        (List.length races >= 1);
      List.iter
        (fun (f : Report.finding) ->
          Alcotest.(check bool)
            (name ^ ": both locations in " ^ f.Report.line)
            true
            (both_locations f.Report.line))
        races)
    [ "missing_reduction.zr"; "shared_counter.zr"; "nowait_useafter.zr" ]

let test_reduction_suggestion () =
  let r = check_file "racy/missing_reduction.zr" in
  Alcotest.(check bool) "suggests reduction(+: s)" true
    (List.exists (fun l -> contains l "suggest reduction(+: s)")
       (lines_of r))

let test_nowait_lint () =
  let r = check_file "racy/nowait_useafter.zr" in
  Alcotest.(check bool) "dynamic race on q" true
    (List.exists
       (fun (f : Report.finding) ->
         contains f.Report.line "race q")
       (Report.races r));
  Alcotest.(check bool) "nowait-dependent-read lint" true
    (List.exists (fun l -> contains l "nowait-dependent-read") (lines_of r))

(* ---- clean programs ----------------------------------------------- *)

let test_clean_twins () =
  List.iter
    (fun name ->
      let r = check_file (Filename.concat "clean" name) in
      Alcotest.(check (list string)) (name ^ ": no findings") []
        (lines_of r))
    [ "reduction.zr"; "atomic_counter.zr"; "nowait_barrier.zr" ]

let test_stock_examples_clean () =
  (* reduced schedule set to keep the test quick; the CI job runs the
     full default configuration over every example *)
  let cfg = config ~schedules:1 ~sync_sweep:false () in
  List.iter
    (fun name ->
      let r = check_file ~config:cfg name in
      Alcotest.(check (list string)) (name ^ ": no findings") []
        (lines_of r))
    [ "histogram.zr"; "jacobi.zr" ]

let test_mandelbrot_clean () =
  let cfg = config ~schedules:1 ~sync_sweep:false () in
  let r = check_file ~config:cfg "mandelbrot.zr" in
  Alcotest.(check (list string)) "mandelbrot.zr: no findings" []
    (lines_of r)

(* ---- lint-only sources -------------------------------------------- *)

let divergent_src = {|
fn main() i64 {
    var n: i64 = 8;
    //$omp parallel firstprivate(n)
    {
        if (omp.get_thread_num() == 0) {
            //$omp barrier
            n = 1;
        }
    }
    return 0;
}
|}

let test_divergent_barrier () =
  let r = Zigomp.check ~name:"divergent.zr" ~config:(config ()) divergent_src in
  let ls = lines_of r in
  Alcotest.(check bool) "divergent-barrier lint" true
    (List.exists (fun l -> contains l "divergent-barrier") ls);
  Alcotest.(check bool) "dynamic divergence observed" true
    (List.exists (fun l -> contains l "divergence") ls)

let default_none_src = {|
fn main() i64 {
    var n: i64 = 4;
    var s: i64 = 0;
    //$omp parallel default(none) shared(s)
    {
        //$omp critical
        { s = s + n; }
    }
    return s;
}
|}

let test_default_none_lint () =
  let r =
    Zigomp.check ~name:"defnone.zr" ~config:(config ()) default_none_src
  in
  Alcotest.(check bool) "default-none lint names the variable" true
    (List.exists
       (fun l -> contains l "default-none" && contains l "n")
       (lines_of r));
  (* static finding: nothing executes *)
  Alcotest.(check int) "no schedules explored" 0 r.Report.schedules

(* ---- determinism -------------------------------------------------- *)

let test_deterministic () =
  let once () = Report.to_string (check_file "racy/shared_counter.zr") in
  Alcotest.(check string) "identical report across two runs" (once ())
    (once ())

let suite =
  [ Alcotest.test_case "racy fixtures report both locations" `Quick
      test_racy_fixtures;
    Alcotest.test_case "missing reduction is suggested as the fix" `Quick
      test_reduction_suggestion;
    Alcotest.test_case "nowait use-after: race + lint" `Quick
      test_nowait_lint;
    Alcotest.test_case "race-free twins are clean" `Quick test_clean_twins;
    Alcotest.test_case "stock examples are clean" `Slow
      test_stock_examples_clean;
    Alcotest.test_case "mandelbrot is clean" `Slow test_mandelbrot_clean;
    Alcotest.test_case "thread-id-gated barrier diverges" `Quick
      test_divergent_barrier;
    Alcotest.test_case "default(none) missing capture" `Quick
      test_default_none_lint;
    Alcotest.test_case "fixed seed is deterministic" `Quick
      test_deterministic;
  ]

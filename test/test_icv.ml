(* Per-task ICV data environments: inheritance at fork, isolation of
   omp_set_* between siblings and concurrent regions, the thread_limit
   contention-group cap, max_active_levels serialisation, the
   ancestor/team-size introspection API, and the warn-once environment
   parsing. *)

open Omprt

let with_restored_globals f =
  let saved = Icv.copy Icv.global in
  Fun.protect
    ~finally:(fun () ->
      Icv.global.nthreads <- saved.Icv.nthreads;
      Icv.global.dynamic <- saved.Icv.dynamic;
      Icv.global.run_sched <- saved.Icv.run_sched;
      Icv.global.max_active_levels <- saved.Icv.max_active_levels;
      Icv.global.thread_limit <- saved.Icv.thread_limit;
      Icv.global.wait_policy <- saved.Icv.wait_policy;
      Icv.global.blocktime <- saved.Icv.blocktime)
    f

(* --- isolation ----------------------------------------------------- *)

let test_set_num_threads_does_not_leak_to_siblings () =
  with_restored_globals @@ fun () ->
  Icv.global.nthreads <- 5;
  let views = Array.make 4 0 in
  Omp.parallel ~num_threads:4 (fun () ->
      let tid = Omp.thread_num () in
      (* every thread sets a different value in its own frame... *)
      Api.set_num_threads (10 + tid);
      Omp.barrier ();
      (* ...and sees only its own, not a last-writer-wins global *)
      views.(tid) <- Api.get_max_threads ());
  Alcotest.(check (array int)) "each thread sees its own nthreads-var"
    [| 10; 11; 12; 13 |] views;
  Alcotest.(check int) "the initial task's frame is untouched" 5
    (Api.get_max_threads ())

let test_set_inside_region_does_not_leak_to_next_region () =
  with_restored_globals @@ fun () ->
  Icv.global.nthreads <- 3;
  Omp.parallel ~num_threads:2 (fun () -> Api.set_num_threads 64);
  Alcotest.(check int) "after the region the default is unchanged" 3
    (Api.get_max_threads ());
  let size = Atomic.make 0 in
  Omp.parallel (fun () ->
      if Omp.thread_num () = 0 then Atomic.set size (Omp.num_threads ()));
  Alcotest.(check int) "the next region uses the untouched default" 3
    (Atomic.get size)

let test_concurrent_top_level_regions_are_isolated () =
  (* two initial threads (raw domains), each encountering its own
     top-level region: omp_set_num_threads inside one must never be
     visible to the other — they are separate contention groups *)
  with_restored_globals @@ fun () ->
  Icv.global.nthreads <- 2;
  let run mine =
    Domain.spawn (fun () ->
        let ok = ref true in
        for _ = 1 to 50 do
          Omp.parallel ~num_threads:2 (fun () ->
              Api.set_num_threads mine;
              for _ = 1 to 20 do
                if Api.get_max_threads () <> mine then ok := false
              done)
        done;
        !ok)
  in
  let d1 = run 77 and d2 = run 88 in
  let ok1 = Domain.join d1 and ok2 = Domain.join d2 in
  Alcotest.(check bool) "domain 1 never saw domain 2's value" true ok1;
  Alcotest.(check bool) "domain 2 never saw domain 1's value" true ok2;
  Alcotest.(check int) "the global frame is untouched" 2
    (Api.get_max_threads ())

let test_child_inherits_parent_frame () =
  with_restored_globals @@ fun () ->
  Api.set_max_active_levels 2;
  let inherited = Atomic.make 0 in
  let inner_size = Atomic.make 0 in
  Omp.parallel ~num_threads:2 (fun () ->
      if Omp.thread_num () = 0 then begin
        (* set in this task's frame; the nested team must inherit it *)
        Api.set_num_threads 3;
        Omp.parallel (fun () ->
            if Omp.thread_num () = 0 then begin
              Atomic.set inherited (Api.get_max_threads ());
              Atomic.set inner_size (Omp.num_threads ())
            end)
      end);
  Alcotest.(check int) "nested team size comes from the parent's frame" 3
    (Atomic.get inner_size);
  Alcotest.(check int) "nested tasks inherit the parent's nthreads-var" 3
    (Atomic.get inherited)

(* --- thread_limit -------------------------------------------------- *)

let test_thread_limit_caps_team () =
  with_restored_globals @@ fun () ->
  Icv.global.thread_limit <- 3;
  let size = Atomic.make 0 in
  Omp.parallel ~num_threads:8 (fun () ->
      if Omp.thread_num () = 0 then Atomic.set size (Omp.num_threads ()));
  Alcotest.(check int) "team capped to thread_limit" 3 (Atomic.get size)

let test_thread_limit_caps_contention_group () =
  with_restored_globals @@ fun () ->
  Icv.global.thread_limit <- 3;
  Icv.global.max_active_levels <- 2;
  let inner_size = Atomic.make 0 in
  Omp.parallel ~num_threads:2 (fun () ->
      if Omp.thread_num () = 0 then
        (* 2 threads already committed: only one more fits *)
        Omp.parallel ~num_threads:4 (fun () ->
            if Omp.thread_num () = 0 then
              Atomic.set inner_size (Omp.num_threads ())));
  Alcotest.(check int) "inner team limited to the remaining budget" 2
    (Atomic.get inner_size)

(* --- max_active_levels --------------------------------------------- *)

let test_default_serialises_nested_regions () =
  let facts = Atomic.make (0, 0, 0, false) in
  Omp.parallel ~num_threads:2 (fun () ->
      if Omp.thread_num () = 0 then
        Omp.parallel ~num_threads:2 (fun () ->
            if Omp.thread_num () = 0 then
              Atomic.set facts
                ( Omp.num_threads (), Api.get_level (),
                  Api.get_active_level (), Api.in_parallel () )));
  let nth, level, active, inpar = Atomic.get facts in
  Alcotest.(check int) "inner team serialised to one thread" 1 nth;
  Alcotest.(check int) "nesting level counts both regions" 2 level;
  Alcotest.(check int) "only the outer region is active" 1 active;
  Alcotest.(check bool) "in_parallel still true inside" true inpar

let test_set_max_active_levels_round_trip () =
  with_restored_globals @@ fun () ->
  Api.set_max_active_levels 3;
  Alcotest.(check int) "set/get" 3 (Api.get_max_active_levels ());
  Api.set_max_active_levels (-1);
  Alcotest.(check int) "negative ignored" 3 (Api.get_max_active_levels ());
  Api.set_max_active_levels 0;
  Alcotest.(check int) "zero accepted (all regions serialised)" 0
    (Api.get_max_active_levels ());
  Api.set_max_active_levels max_int;
  Alcotest.(check int) "clamped to the supported maximum"
    (Api.get_supported_active_levels ())
    (Api.get_max_active_levels ())

let test_zero_levels_serialises_top_level () =
  with_restored_globals @@ fun () ->
  Api.set_max_active_levels 0;
  let size = Atomic.make 0 in
  Omp.parallel ~num_threads:4 (fun () ->
      if Omp.thread_num () = 0 then Atomic.set size (Omp.num_threads ()));
  Alcotest.(check int) "even the top-level region is serialised" 1
    (Atomic.get size)

(* --- ancestors ----------------------------------------------------- *)

let test_ancestor_and_team_size_at_depth_2 () =
  with_restored_globals @@ fun () ->
  Api.set_max_active_levels 2;
  let checks = Atomic.make [] in
  Omp.parallel ~num_threads:2 (fun () ->
      let outer_tid = Omp.thread_num () in
      Omp.parallel ~num_threads:2 (fun () ->
          let facts =
            ( outer_tid,
              Omp.thread_num (),
              Api.get_ancestor_thread_num 1,
              Api.get_ancestor_thread_num 2,
              Api.get_team_size 0,
              Api.get_team_size 1,
              Api.get_team_size 2,
              Api.get_ancestor_thread_num 0,
              Api.get_ancestor_thread_num 3,
              Api.get_team_size 3 )
          in
          Atomics.cas_loop checks (fun l -> facts :: l)));
  let all = Atomic.get checks in
  Alcotest.(check int) "4 leaves" 4 (List.length all);
  List.iter
    (fun (outer, inner, anc1, anc2, sz0, sz1, sz2, anc0, anc3, sz3) ->
      Alcotest.(check int) "ancestor at level 1 is the outer tid" outer anc1;
      Alcotest.(check int) "ancestor at the current level is self" inner
        anc2;
      Alcotest.(check int) "initial team has one thread" 1 sz0;
      Alcotest.(check int) "outer team size" 2 sz1;
      Alcotest.(check int) "inner team size" 2 sz2;
      Alcotest.(check int) "level 0 ancestor is thread 0" 0 anc0;
      Alcotest.(check int) "beyond the nesting depth: -1" (-1) anc3;
      Alcotest.(check int) "team size beyond the depth: -1" (-1) sz3)
    all

let test_ancestor_outside_any_region () =
  Alcotest.(check int) "level 0 outside" 0 (Api.get_ancestor_thread_num 0);
  Alcotest.(check int) "team size 0 outside" 1 (Api.get_team_size 0);
  Alcotest.(check int) "level 1 outside is out of range" (-1)
    (Api.get_ancestor_thread_num 1);
  Alcotest.(check int) "negative level" (-1) (Api.get_ancestor_thread_num (-1))

(* --- serial-path failures and chunk validation --------------------- *)

let test_serial_fork_wraps_body_exception () =
  Alcotest.(check bool) "nt=1 failure arrives as Worker_failure tid 0" true
    (try
       Team.fork ~num_threads:1 (fun ~tid:_ -> failwith "serial boom");
       false
     with Team.Worker_failure (0, Failure msg) -> msg = "serial boom")

let test_serialised_fork_wraps_body_exception () =
  Alcotest.(check bool)
    "serialised nested failure arrives as Worker_failure" true
    (try
       Omp.parallel ~num_threads:2 (fun () ->
           Omp.parallel ~num_threads:2 (fun () -> failwith "nested boom"));
       false
     with
     | Team.Worker_failure (_, Team.Worker_failure (0, Failure msg)) ->
         msg = "nested boom")

let test_negative_chunk_error_names_the_entry_point () =
  Alcotest.check_raises "static_for path"
    (Invalid_argument "Kmpc.static_for: negative chunk") (fun () ->
      Kmpc.static_for ~chunk:(-2) ~lo:0 ~hi:10 ~step:1 (fun _ -> ()));
  Alcotest.check_raises "for_static_init path"
    (Invalid_argument "Kmpc.for_static_init: negative chunk") (fun () ->
      ignore (Kmpc.for_static_init ~chunk:(-2) ~lo:0 ~hi:10 ~step:1 ()))

(* --- schedule(runtime) resolves against the task frame ------------- *)

let test_runtime_schedule_set_inside_region () =
  with_restored_globals @@ fun () ->
  Icv.global.run_sched <- Omp_model.Sched.Static None;
  let hits = Array.make 60 0 in
  Omp.parallel ~num_threads:2 (fun () ->
      (* each thread overrides its own run-sched-var; the runtime loop
         must resolve against the frame, not a process global *)
      Api.set_schedule (Omp_model.Sched.Dynamic 4);
      Omp.ws_for ~sched:Omp_model.Sched.Runtime ~lo:0 ~hi:60 (fun lo hi ->
          for i = lo to hi - 1 do
            ignore (Atomic.fetch_and_add (Atomic.make 0) 1);
            hits.(i) <- hits.(i) + 1
          done));
  Alcotest.(check bool) "covered exactly once" true
    (Array.for_all (( = ) 1) hits);
  Alcotest.(check bool) "the global run-sched-var is untouched" true
    (Icv.global.run_sched = Omp_model.Sched.Static None)

(* --- environment parsing and warn-once ----------------------------- *)

let with_env pairs f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (k, old) -> Unix.putenv k (Option.value old ~default:""))
        saved)
    f

let test_pure_parsers () =
  Alcotest.(check (option int)) "nthreads ok" (Some 4)
    (Icv.parse_nthreads " 4 ");
  Alcotest.(check (option int)) "nthreads zero rejected" None
    (Icv.parse_nthreads "0");
  Alcotest.(check (option int)) "nthreads garbage rejected" None
    (Icv.parse_nthreads "four");
  Alcotest.(check (option int)) "levels zero ok" (Some 0)
    (Icv.parse_max_active_levels "0");
  Alcotest.(check (option int)) "levels negative rejected" None
    (Icv.parse_max_active_levels "-1");
  Alcotest.(check (option bool)) "dynamic true forms" (Some true)
    (Icv.parse_dynamic "TRUE");
  Alcotest.(check (option bool)) "dynamic 0 is false" (Some false)
    (Icv.parse_dynamic "0");
  Alcotest.(check (option bool)) "dynamic garbage rejected" None
    (Icv.parse_dynamic "maybe");
  Alcotest.(check (option int)) "blocktime zero ok" (Some 0)
    (Icv.parse_blocktime "0");
  Alcotest.(check (option int)) "blocktime negative rejected" None
    (Icv.parse_blocktime "-5");
  Alcotest.(check bool) "schedule parse routes to Sched.of_string" true
    (Icv.parse_schedule "dynamic,8" = Some (Omp_model.Sched.Dynamic 8));
  Alcotest.(check bool) "wait policy active" true
    (Icv.parse_wait_policy " Active " = Some Icv.Active);
  Alcotest.(check bool) "wait policy passive" true
    (Icv.parse_wait_policy "PASSIVE" = Some Icv.Passive);
  Alcotest.(check bool) "wait policy garbage rejected" true
    (Icv.parse_wait_policy "aggressive" = None)

let test_malformed_env_warns_once () =
  with_restored_globals @@ fun () ->
  with_env
    [ ("OMP_DYNAMIC", "perhaps"); ("OMP_NUM_THREADS", "lots");
      ("ZIGOMP_WARNINGS", "0") ]
    (fun () ->
      Icv.forget_warnings ();
      let before = Icv.warning_count () in
      Icv.reset ();
      Alcotest.(check int) "one warning per malformed variable"
        (before + 2) (Icv.warning_count ());
      Alcotest.(check bool) "dynamic fell back to its default" false
        Icv.global.dynamic;
      Alcotest.(check int) "nthreads fell back to the host default"
        (Domain.recommended_domain_count ())
        Icv.global.nthreads;
      (* the latch: a second read of the same variables stays quiet *)
      Icv.reset ();
      Alcotest.(check int) "re-reading does not warn again"
        (before + 2) (Icv.warning_count ()));
  Icv.forget_warnings ()

let test_well_formed_and_empty_env_do_not_warn () =
  with_restored_globals @@ fun () ->
  with_env
    [ ("OMP_DYNAMIC", "true"); ("OMP_NUM_THREADS", "");
      ("OMP_MAX_ACTIVE_LEVELS", "2"); ("OMP_THREAD_LIMIT", "9");
      ("OMP_SCHEDULE", "guided,4") ]
    (fun () ->
      Icv.forget_warnings ();
      let before = Icv.warning_count () in
      Icv.reset ();
      Alcotest.(check int) "no warnings for valid or empty values" before
        (Icv.warning_count ());
      Alcotest.(check bool) "dynamic parsed" true Icv.global.dynamic;
      Alcotest.(check int) "max_active_levels parsed" 2
        Icv.global.max_active_levels;
      Alcotest.(check int) "thread_limit parsed" 9 Icv.global.thread_limit;
      Alcotest.(check bool) "schedule parsed" true
        (Icv.global.run_sched = Omp_model.Sched.Guided 4));
  Icv.reset ()

let test_malformed_wait_policy_env_warns_once () =
  (* pre-PR, OMP_WAIT_POLICY was the one variable read without the
     warn-once diagnostic: malformed values were silently coerced to
     Passive.  Pin the env_or path. *)
  with_restored_globals @@ fun () ->
  with_env [ ("OMP_WAIT_POLICY", "aggressive"); ("ZIGOMP_WARNINGS", "0") ]
    (fun () ->
      Icv.forget_warnings ();
      let before = Icv.warning_count () in
      Icv.reset ();
      Alcotest.(check int) "malformed wait policy warned" (before + 1)
        (Icv.warning_count ());
      Alcotest.(check bool) "fell back to passive" true
        (Icv.global.wait_policy = Icv.Passive);
      (* the latch: re-reading the same variable stays quiet *)
      Icv.reset ();
      Alcotest.(check int) "warn-once latch holds" (before + 1)
        (Icv.warning_count ()));
  with_env [ ("OMP_WAIT_POLICY", "ACTIVE") ] (fun () ->
      Icv.forget_warnings ();
      let before = Icv.warning_count () in
      Icv.reset ();
      Alcotest.(check int) "well-formed value stays quiet" before
        (Icv.warning_count ());
      Alcotest.(check bool) "active parsed case-insensitively" true
        (Icv.global.wait_policy = Icv.Active));
  Icv.forget_warnings ();
  Icv.reset ()

let test_malformed_schedule_env_warns () =
  with_restored_globals @@ fun () ->
  with_env [ ("OMP_SCHEDULE", "bogus,3"); ("ZIGOMP_WARNINGS", "off") ]
    (fun () ->
      Icv.forget_warnings ();
      let before = Icv.warning_count () in
      Icv.reset ();
      Alcotest.(check int) "malformed schedule warned" (before + 1)
        (Icv.warning_count ());
      Alcotest.(check bool) "fell back to static" true
        (Icv.global.run_sched = Omp_model.Sched.Static None));
  Icv.forget_warnings ();
  Icv.reset ()

let suite =
  [ Alcotest.test_case "set_num_threads stays in the caller's frame" `Quick
      test_set_num_threads_does_not_leak_to_siblings;
    Alcotest.test_case "no leak into the next region" `Quick
      test_set_inside_region_does_not_leak_to_next_region;
    Alcotest.test_case "concurrent top-level regions are isolated" `Quick
      test_concurrent_top_level_regions_are_isolated;
    Alcotest.test_case "nested tasks inherit the parent frame" `Quick
      test_child_inherits_parent_frame;
    Alcotest.test_case "thread_limit caps the team" `Quick
      test_thread_limit_caps_team;
    Alcotest.test_case "thread_limit caps the contention group" `Quick
      test_thread_limit_caps_contention_group;
    Alcotest.test_case "nested regions serialise by default" `Quick
      test_default_serialises_nested_regions;
    Alcotest.test_case "max_active_levels round trip" `Quick
      test_set_max_active_levels_round_trip;
    Alcotest.test_case "max_active_levels 0 serialises top level" `Quick
      test_zero_levels_serialises_top_level;
    Alcotest.test_case "ancestor/team size at depth 2" `Quick
      test_ancestor_and_team_size_at_depth_2;
    Alcotest.test_case "ancestor API outside any region" `Quick
      test_ancestor_outside_any_region;
    Alcotest.test_case "serial fork wraps body exceptions" `Quick
      test_serial_fork_wraps_body_exception;
    Alcotest.test_case "serialised fork wraps body exceptions" `Quick
      test_serialised_fork_wraps_body_exception;
    Alcotest.test_case "negative chunk names the entry point" `Quick
      test_negative_chunk_error_names_the_entry_point;
    Alcotest.test_case "schedule(runtime) reads the task frame" `Quick
      test_runtime_schedule_set_inside_region;
    Alcotest.test_case "pure env parsers" `Quick test_pure_parsers;
    Alcotest.test_case "malformed env warns once" `Quick
      test_malformed_env_warns_once;
    Alcotest.test_case "valid and empty env stay quiet" `Quick
      test_well_formed_and_empty_env_do_not_warn;
    Alcotest.test_case "malformed OMP_SCHEDULE warns" `Quick
      test_malformed_schedule_env_warns;
    Alcotest.test_case "malformed OMP_WAIT_POLICY warns once" `Quick
      test_malformed_wait_policy_env_warns_once;
  ]

(* End-to-end tests: Zr programs with OpenMP pragmas, preprocessed and
   executed on real OCaml domains, checked against expected values (and
   against serial execution of the same program on one thread). *)

module V = Interp.Value

let load = Interp.load

let vfloat = function
  | V.VFloat f -> f
  | v -> Alcotest.failf "expected float, got %s" (V.to_string v)

let vint = function
  | V.VInt i -> i
  | v -> Alcotest.failf "expected int, got %s" (V.to_string v)

let () = Omprt.Api.set_num_threads 4

(* ---- plain language semantics (no pragmas) ---- *)

let test_scalar_functions () =
  let p = load {|
fn fib(n: i64) i64 {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
fn arith() f64 {
    var a: f64 = 3.0;
    a *= 2.0;
    a += 1.5;
    a -= 0.5;
    a /= 2.0;
    return a;
}
|} in
  Alcotest.(check int) "recursion" 55 (vint (Interp.call p "fib" [ V.VInt 10 ]));
  Alcotest.(check (float 1e-12)) "compound assignment" 3.5
    (vfloat (Interp.call p "arith" []))

let test_control_flow () =
  let p = load {|
fn count_odd(n: i64) i64 {
    var c: i64 = 0;
    var i: i64 = 0;
    while (i < n) : (i += 1) {
        if (i % 2 == 0) { continue; }
        if (i > 50) { break; }
        c += 1;
    }
    return c;
}
|} in
  Alcotest.(check int) "break/continue" 25
    (vint (Interp.call p "count_odd" [ V.VInt 100 ]))

let test_arrays_and_pointers () =
  let p = load {|
fn fill_and_sum(n: i64) f64 {
    var a = alloc_f64(n);
    var i: i64 = 0;
    while (i < n) : (i += 1) { a[i] = float_of(i); }
    var s: f64 = 0.0;
    i = 0;
    while (i < n) : (i += 1) { s += a[i]; }
    return s;
}
fn through_pointer() i64 {
    var x: i64 = 1;
    var p = &x;
    p.* = 42;
    return x;
}
|} in
  Alcotest.(check (float 1e-9)) "array sum" 4950.
    (vfloat (Interp.call p "fill_and_sum" [ V.VInt 100 ]));
  Alcotest.(check int) "pointer write" 42
    (vint (Interp.call p "through_pointer" []))

let test_globals () =
  let p = load {|
var counter: i64 = 10;
fn bump() i64 {
    counter += 5;
    return counter;
}
|} in
  Alcotest.(check int) "first" 15 (vint (Interp.call p "bump" []));
  Alcotest.(check int) "second" 20 (vint (Interp.call p "bump" []))

let test_runtime_safety () =
  let p = load {|
fn oob() f64 { var a = alloc_f64(3); return a[5]; }
fn undef_use() f64 { var x: f64 = undefined; return x + 1.0; }
|} in
  Alcotest.(check bool) "bounds check traps" true
    (try ignore (Interp.call p "oob" []); false
     with V.Runtime_error _ -> true);
  Alcotest.(check bool) "undefined-use traps" true
    (try ignore (Interp.call p "undef_use" []); false
     with V.Runtime_error _ -> true)

(* ---- OpenMP end-to-end ---- *)

let dot_src = {|
fn dot(n: i64, x: []f64, y: []f64) f64 {
    var s: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for reduction(+: s) shared(x, y)
    while (i < n) : (i += 1) {
        s += x[i] * y[i];
    }
    return s;
}
|}

let test_parallel_dot () =
  let p = load dot_src in
  let n = 1000 in
  let x = Array.init n (fun i -> float_of_int i) in
  let y = Array.init n (fun i -> float_of_int (i mod 7)) in
  let expected = ref 0. in
  for i = 0 to n - 1 do expected := !expected +. (x.(i) *. y.(i)) done;
  let r =
    vfloat
      (Interp.call p "dot" [ V.VInt n; V.VFloatArr x; V.VFloatArr y ])
  in
  Alcotest.(check (float 1e-6)) "parallel dot product" !expected r

let test_schedules_agree () =
  (* the same loop under every schedule gives the same answer *)
  let src sched = Printf.sprintf {|
fn s(n: i64) f64 {
    var acc: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for reduction(+: acc) %s
    while (i < n) : (i += 1) {
        acc += float_of(i);
    }
    return acc;
}
|} sched
  in
  let expected = float_of_int (617 * 616 / 2) in
  List.iter
    (fun sched ->
      let p = load (src sched) in
      Alcotest.(check (float 1e-6)) sched expected
        (vfloat (Interp.call p "s" [ V.VInt 617 ])))
    [ "schedule(static)"; "schedule(static, 3)"; "schedule(dynamic, 10)";
      "schedule(guided, 2)"; "schedule(runtime)"; "" ]

let test_parallel_region_threads () =
  let p = load {|
fn team() f64 {
    var count: f64 = 0.0;
    //$omp parallel num_threads(3)
    {
        //$omp atomic
        count += 1.0;
    }
    return count;
}
|} in
  Alcotest.(check (float 0.)) "three contributions" 3.
    (vfloat (Interp.call p "team" []))

let test_firstprivate_and_private () =
  let p = load {|
fn fp(n: i64) f64 {
    var base: f64 = 100.0;
    var acc: f64 = 0.0;
    //$omp parallel firstprivate(base) num_threads(4)
    {
        var local: f64 = 0.0;
        base += float_of(omp.get_thread_num());
        local = base;
        //$omp atomic
        acc += local;
    }
    return acc;
}
|} in
  (* each thread starts from base=100, adds its tid: 100+0+...+103 *)
  Alcotest.(check (float 1e-9)) "firstprivate copies" 406.
    (vfloat (Interp.call p "fp" [ V.VInt 4 ]))

let test_mul_reduction_cas () =
  (* the paper's CAS-loop multiplication reduction *)
  let p = load {|
fn product(n: i64) f64 {
    var prod: f64 = 1.0;
    var i: i64 = 0;
    //$omp parallel for reduction(*: prod)
    while (i < n) : (i += 1) {
        prod *= 2.0;
    }
    return prod;
}
|} in
  Alcotest.(check (float 1e-6)) "2^20 via CAS-loop reduction" (2. ** 20.)
    (vfloat (Interp.call p "product" [ V.VInt 20 ]))

let test_min_max_reductions () =
  let p = load {|
fn extremes(n: i64, x: []f64) f64 {
    var lo: f64 = 0.0;
    var hi: f64 = 0.0;
    lo = __omp_huge();
    hi = -__omp_huge();
    var i: i64 = 0;
    //$omp parallel for reduction(min: lo) reduction(max: hi) shared(x)
    while (i < n) : (i += 1) {
        lo = __omp_min(lo, x[i]);
        hi = __omp_max(hi, x[i]);
    }
    return hi - lo;
}
|} in
  let x = Array.init 512 (fun i -> float_of_int ((i * 37) mod 101)) in
  Alcotest.(check (float 1e-9)) "max - min" 100.
    (vfloat (Interp.call p "extremes" [ V.VInt 512; V.VFloatArr x ]))

let test_critical_and_barrier () =
  let p = load {|
fn phases() f64 {
    var a: f64 = 0.0;
    var wrong: f64 = 0.0;
    //$omp parallel num_threads(4)
    {
        //$omp critical
        { a += 1.0; }
        //$omp barrier
        if (a != 4.0) {
            //$omp atomic
            wrong += 1.0;
        }
    }
    return wrong;
}
|} in
  Alcotest.(check (float 0.)) "barrier separates phases" 0.
    (vfloat (Interp.call p "phases" []))

let test_single_and_master () =
  let p = load {|
fn once() f64 {
    var singles: f64 = 0.0;
    var masters: f64 = 0.0;
    //$omp parallel num_threads(4)
    {
        //$omp single
        { singles += 1.0; }
        //$omp master
        { masters += 1.0; }
    }
    return singles * 10.0 + masters;
}
|} in
  Alcotest.(check (float 0.)) "one single + one master" 11.
    (vfloat (Interp.call p "once" []))

let test_nowait_with_independent_loops () =
  let p = load {|
fn two_loops(n: i64, a: []f64, b: []f64) f64 {
    //$omp parallel shared(a, b)
    {
        var i: i64 = 0;
        //$omp for nowait
        while (i < n) : (i += 1) { a[i] = 1.0; }
        var j: i64 = 0;
        //$omp for
        while (j < n) : (j += 1) { b[j] = 2.0; }
    }
    var s: f64 = 0.0;
    var k: i64 = 0;
    while (k < n) : (k += 1) { s += a[k] + b[k]; }
    return s;
}
|} in
  let n = 256 in
  Alcotest.(check (float 1e-9)) "both loops complete" (3. *. float_of_int n)
    (vfloat
       (Interp.call p "two_loops"
          [ V.VInt n; V.VFloatArr (Array.make n 0.);
            V.VFloatArr (Array.make n 0.) ]))

let test_parallel_matches_serial () =
  (* identical program, 1 thread vs 4 threads: bit-identical result for
     an order-independent computation *)
  let p = load dot_src in
  let n = 2048 in
  let x = Array.init n (fun i -> 1. /. float_of_int (i + 1)) in
  let y = Array.init n (fun i -> float_of_int (i mod 13)) in
  let run nt =
    Omprt.Api.set_num_threads nt;
    vfloat (Interp.call p "dot" [ V.VInt n; V.VFloatArr x; V.VFloatArr y ])
  in
  let serial = run 1 in
  let parallel = run 4 in
  Omprt.Api.set_num_threads 4;
  Alcotest.(check (float 1e-9)) "1-thread vs 4-thread" serial parallel

let test_pragmas_error_without_preprocess () =
  let p = Interp.load ~preprocess:false dot_src in
  Alcotest.(check bool) "directives trap in the interpreter" true
    (try
       ignore
         (Interp.call p "dot"
            [ V.VInt 4; V.VFloatArr [| 1.; 2.; 3.; 4. |];
              V.VFloatArr [| 1.; 1.; 1.; 1. |] ]);
       false
     with V.Runtime_error _ -> true)

let test_collapse2 () =
  let p = load {|
fn mat_sum(n: i64, m: i64, a: []f64) f64 {
    var s: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for collapse(2) reduction(+: s) shared(a)
    while (i < n) : (i += 1) {
        var j: i64 = 0;
        while (j < m) : (j += 1) {
            s += a[i * m + j];
        }
    }
    return s;
}
|} in
  let n = 13 and m = 29 in
  let a = Array.init (n * m) float_of_int in
  let expect = Array.fold_left ( +. ) 0. a in
  Alcotest.(check (float 1e-9)) "collapsed 2-D sum" expect
    (vfloat
       (Interp.call p "mat_sum" [ V.VInt n; V.VInt m; V.VFloatArr a ]))

let test_collapse2_dynamic_ragged () =
  (* fused space not divisible by chunk or team size *)
  let p = load {|
fn grid(n: i64, m: i64, hits: []f64) f64 {
    var i: i64 = 0;
    //$omp parallel
    {
        //$omp for collapse(2) schedule(dynamic, 7) shared(hits)
        while (i < n) : (i += 1) {
            var j: i64 = 0;
            while (j < m) : (j += 1) {
                hits[i * m + j] = hits[i * m + j] + 1.0;
            }
        }
    }
    var k: i64 = 0;
    var bad: f64 = 0.0;
    while (k < n * m) : (k += 1) {
        if (hits[k] != 1.0) { bad += 1.0; }
    }
    return bad;
}
|} in
  let n = 11 and m = 17 in
  Alcotest.(check (float 0.)) "every cell exactly once" 0.
    (vfloat
       (Interp.call p "grid"
          [ V.VInt n; V.VInt m; V.VFloatArr (Array.make (n * m) 0.) ]))

let test_collapse3 () =
  (* depth > 2 fuses the whole nest: every (i, j, k) cell is visited
     exactly once even when no dimension divides the team size *)
  let p = load {|
fn cube(n: i64, m: i64, l: i64, hits: []f64) f64 {
    var i: i64 = 0;
    //$omp parallel for collapse(3) shared(hits)
    while (i < n) : (i += 1) {
        var j: i64 = 0;
        while (j < m) : (j += 1) {
            var k: i64 = 0;
            while (k < l) : (k += 1) {
                hits[(i * m + j) * l + k] = hits[(i * m + j) * l + k] + 1.0;
            }
        }
    }
    var t: i64 = 0;
    var bad: f64 = 0.0;
    while (t < n * m * l) : (t += 1) {
        if (hits[t] != 1.0) { bad += 1.0; }
    }
    return bad;
}
|} in
  let n = 5 and m = 7 and l = 3 in
  Alcotest.(check (float 0.)) "every cell exactly once" 0.
    (vfloat
       (Interp.call p "cube"
          [ V.VInt n; V.VInt m; V.VInt l;
            V.VFloatArr (Array.make (n * m * l) 0.) ]))

let test_collapse3_downward_steps () =
  (* mixed directions and strides through the div/mod recovery *)
  let p = load {|
fn sum(a: []f64) f64 {
    var s: f64 = 0.0;
    var i: i64 = 9;
    //$omp parallel for collapse(3) reduction(+: s) shared(a)
    while (i >= 0) : (i -= 3) {
        var j: i64 = 0;
        while (j < 8) : (j += 2) {
            var k: i64 = 5;
            while (k > 0) : (k -= 1) {
                s += a[i * 10 + j + k];
            }
        }
    }
    return s;
}
|} in
  let a = Array.init 110 (fun t -> float_of_int (t * t mod 97)) in
  let expect = ref 0.0 in
  let i = ref 9 in
  while !i >= 0 do
    let j = ref 0 in
    while !j < 8 do
      let k = ref 5 in
      while !k > 0 do
        expect := !expect +. a.((!i * 10) + !j + !k);
        decr k
      done;
      j := !j + 2
    done;
    i := !i - 3
  done;
  Alcotest.(check (float 1e-9)) "collapse(3) with mixed steps" !expect
    (vfloat (Interp.call p "sum" [ V.VFloatArr a ]))

let test_collapse2_requires_canonical_nest () =
  Alcotest.(check bool) "non-nested body rejected" true
    (try
       ignore
         (load {|
fn f(n: i64) f64 {
    var s: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for collapse(2) reduction(+: s)
    while (i < n) : (i += 1) {
        s += 1.0;
    }
    return s;
}
|});
       false
     with Zr.Source.Error _ -> true)

let test_omp_namespace () =
  let p = load {|
fn api_probe() i64 {
    var inside: i64 = 0;
    //$omp parallel num_threads(2)
    {
        //$omp master
        { inside = omp.get_num_threads(); }
    }
    return inside * 100 + omp.get_num_threads();
}
|} in
  (* 2 threads inside, 1 outside *)
  Alcotest.(check int) "omp.get_num_threads in/out" 201
    (vint (Interp.call p "api_probe" []))

let test_threadprivate () =
  let p = load {|
var counter: f64 = 10.0;
//$omp threadprivate(counter)
fn probe() f64 {
    var total: f64 = 0.0;
    //$omp parallel num_threads(4)
    {
        counter += float_of(omp.get_thread_num());
        //$omp critical
        { total += counter; }
    }
    return total;
}
|} in
  (* four per-thread copies, each starting at 10, plus the thread id *)
  Alcotest.(check (float 1e-9)) "per-thread copies" 46.
    (vfloat (Interp.call p "probe" []))

let test_threadprivate_master_persists () =
  let p = load {|
var tally: f64 = 0.0;
//$omp threadprivate(tally)
fn bump() f64 {
    //$omp parallel num_threads(2)
    {
        //$omp master
        { tally += 1.0; }
    }
    return tally;
}
|} in
  (* the encountering thread's copy persists across regions *)
  Alcotest.(check (float 0.)) "first region" 1. (vfloat (Interp.call p "bump" []));
  Alcotest.(check (float 0.)) "second region" 2. (vfloat (Interp.call p "bump" []))

let test_threadprivate_unknown_global_rejected () =
  Alcotest.(check bool) "unknown global rejected" true
    (try
       ignore (load "//$omp threadprivate(nope)\nfn main() void { }");
       false
     with V.Runtime_error _ -> true)

let test_host_function_interop () =
  let p = load {|
fn transform(n: i64, x: []f64) f64 {
    var s: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for reduction(+: s) shared(x)
    while (i < n) : (i += 1) {
        s += host_scale(x[i]);
    }
    return s;
}
|} in
  Interp.register_host "host_scale" (function
    | [ V.VFloat f ] -> V.VFloat (2. *. f)
    | _ -> failwith "host_scale: bad args");
  Fun.protect
    ~finally:(fun () -> Interp.unregister_host "host_scale")
    (fun () ->
      let x = Array.init 100 float_of_int in
      Alcotest.(check (float 1e-9)) "host fn called from a team"
        (2. *. 4950.)
        (vfloat
           (Interp.call p "transform" [ V.VInt 100; V.VFloatArr x ])))

let test_host_function_unregistered_errors () =
  let p = load "fn f() f64 { return mystery(); }" in
  Alcotest.(check bool) "unknown extern traps" true
    (try ignore (Interp.call p "f" []); false
     with V.Runtime_error _ -> true)

let suite =
  [ Alcotest.test_case "scalar functions" `Quick test_scalar_functions;
    Alcotest.test_case "threadprivate copies" `Quick test_threadprivate;
    Alcotest.test_case "threadprivate persistence" `Quick
      test_threadprivate_master_persists;
    Alcotest.test_case "threadprivate unknown global" `Quick
      test_threadprivate_unknown_global_rejected;
    Alcotest.test_case "host function interop" `Quick
      test_host_function_interop;
    Alcotest.test_case "unknown extern traps" `Quick
      test_host_function_unregistered_errors;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "arrays and pointers" `Quick test_arrays_and_pointers;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "runtime safety traps" `Quick test_runtime_safety;
    Alcotest.test_case "parallel dot product" `Quick test_parallel_dot;
    Alcotest.test_case "all schedules agree" `Quick test_schedules_agree;
    Alcotest.test_case "num_threads clause" `Quick
      test_parallel_region_threads;
    Alcotest.test_case "firstprivate semantics" `Quick
      test_firstprivate_and_private;
    Alcotest.test_case "CAS-loop multiply reduction" `Quick
      test_mul_reduction_cas;
    Alcotest.test_case "min/max reductions" `Quick test_min_max_reductions;
    Alcotest.test_case "critical + barrier" `Quick test_critical_and_barrier;
    Alcotest.test_case "single + master" `Quick test_single_and_master;
    Alcotest.test_case "nowait loops" `Quick test_nowait_with_independent_loops;
    Alcotest.test_case "parallel matches serial" `Quick
      test_parallel_matches_serial;
    Alcotest.test_case "unpreprocessed pragmas trap" `Quick
      test_pragmas_error_without_preprocess;
    Alcotest.test_case "collapse(2) correctness" `Quick test_collapse2;
    Alcotest.test_case "collapse(2) dynamic ragged" `Quick
      test_collapse2_dynamic_ragged;
    Alcotest.test_case "collapse(2) canonical-nest check" `Quick
      test_collapse2_requires_canonical_nest;
    Alcotest.test_case "collapse(3) correctness" `Quick test_collapse3;
    Alcotest.test_case "collapse(3) mixed steps" `Quick
      test_collapse3_downward_steps;
    Alcotest.test_case "omp namespace" `Quick test_omp_namespace;
  ]

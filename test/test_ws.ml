(* Worksharing partition arithmetic: unit cases plus the qcheck
   properties that any OpenMP runtime must satisfy — every iteration is
   executed exactly once whatever the schedule. *)

open Omprt

let test_trip_count () =
  Alcotest.(check int) "simple" 10
    (Ws.trip_count ~lo:0 ~hi:10 ~step:1 ());
  Alcotest.(check int) "inclusive" 11
    (Ws.trip_count ~inclusive:true ~lo:0 ~hi:10 ~step:1 ());
  Alcotest.(check int) "stride 3" 4 (Ws.trip_count ~lo:0 ~hi:10 ~step:3 ());
  Alcotest.(check int) "empty" 0 (Ws.trip_count ~lo:10 ~hi:0 ~step:1 ());
  Alcotest.(check int) "negative step" 10
    (Ws.trip_count ~lo:9 ~hi:(-1) ~step:(-1) ());
  Alcotest.(check int) "negative stride 4" 3
    (Ws.trip_count ~lo:10 ~hi:0 ~step:(-4) ());
  Alcotest.check_raises "zero step"
    (Invalid_argument "Ws.trip_count: zero step") (fun () ->
      ignore (Ws.trip_count ~lo:0 ~hi:1 ~step:0 ()))

let test_trip_count_extreme_bounds () =
  (* inclusive upper bound at max_int: the old [hi + 1] widening wrapped
     to min_int and reported an empty loop *)
  Alcotest.(check int) "<= max_int does not wrap" 10
    (Ws.trip_count ~inclusive:true ~lo:(max_int - 9) ~hi:max_int ~step:1 ());
  Alcotest.(check int) ">= min_int does not wrap" 10
    (Ws.trip_count ~inclusive:true ~lo:(min_int + 9) ~hi:min_int
       ~step:(-1) ());
  Alcotest.(check int) "single iteration at max_int" 1
    (Ws.trip_count ~inclusive:true ~lo:max_int ~hi:max_int ~step:1 ());
  Alcotest.(check int) "single iteration at min_int" 1
    (Ws.trip_count ~inclusive:true ~lo:min_int ~hi:min_int ~step:(-1) ());
  Alcotest.(check int) "strided inclusive at max_int" 4
    (Ws.trip_count ~inclusive:true ~lo:(max_int - 9) ~hi:max_int ~step:3 ());
  Alcotest.(check int) "empty inclusive range stays empty" 0
    (Ws.trip_count ~inclusive:true ~lo:max_int ~hi:(max_int - 1) ~step:1 ())

let test_dispatch_exhausted_cursor_is_clamped () =
  (* a bare fetch-and-add kept growing the cursor after exhaustion;
     with a huge chunk a few trailing polls were enough to wrap it past
     max_int and hand out phantom chunks *)
  let chunk = max_int / 4 in
  let d =
    Ws.Dispatch.create ~kind:Ws.Dispatch.Dyn ~trips:(chunk + 1) ~chunk
      ~nthreads:2
  in
  Alcotest.(check (option (pair int int))) "1st" (Some (0, chunk))
    (Ws.Dispatch.next d);
  Alcotest.(check (option (pair int int))) "2nd (short)"
    (Some (chunk, chunk + 1))
    (Ws.Dispatch.next d);
  for _ = 1 to 100 do
    Alcotest.(check (option (pair int int))) "post-exhaustion poll" None
      (Ws.Dispatch.next d);
    Alcotest.(check int) "remaining stays exact" 0 (Ws.Dispatch.remaining d)
  done

let test_dispatch_exhausted_under_contention () =
  (* hammer an exhausted dispatcher from several domains at once: no
     claim may ever be produced, and the cursor must not move *)
  let d =
    Ws.Dispatch.create ~kind:Ws.Dispatch.Dyn ~trips:8 ~chunk:(max_int / 2)
      ~nthreads:4
  in
  Alcotest.(check bool) "the only chunk" true (Ws.Dispatch.next d <> None);
  let phantom = Atomic.make 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              if Ws.Dispatch.next d <> None then
                Atomics.Int.add phantom 1
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no phantom chunks" 0 (Atomic.get phantom);
  Alcotest.(check int) "remaining still exact" 0 (Ws.Dispatch.remaining d)

let test_static_block_balance () =
  (* libomp rule: first (trips mod nthreads) threads get one extra *)
  let blocks =
    List.filter_map
      (fun tid -> Ws.static_block ~tid ~nthreads:4 ~trips:10)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (pair int int)))
    "blocked split of 10 over 4"
    [ (0, 3); (3, 6); (6, 8); (8, 10) ]
    blocks

let test_static_block_fewer_trips_than_threads () =
  let blocks =
    List.map (fun tid -> Ws.static_block ~tid ~nthreads:4 ~trips:2) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (option (pair int int))))
    "threads beyond the work get none"
    [ Some (0, 1); Some (1, 2); None; None ]
    blocks

let test_static_chunks_round_robin () =
  Alcotest.(check (list (pair int int)))
    "thread 0, chunk 2, 3 threads, 10 trips"
    [ (0, 2); (6, 8) ]
    (Ws.static_chunks ~tid:0 ~nthreads:3 ~trips:10 ~chunk:2);
  Alcotest.(check (list (pair int int)))
    "thread 2 tail chunk is short"
    [ (4, 6) ]
    (Ws.static_chunks ~tid:2 ~nthreads:3 ~trips:6 ~chunk:2)

let test_denormalise () =
  Alcotest.(check (pair int int)) "unit step is the identity shift"
    (5, 8)
    (Ws.denormalise ~lo:5 ~step:1 (0, 3));
  Alcotest.(check (pair int int)) "positive stride scales the block"
    (10, 16)
    (Ws.denormalise ~lo:10 ~step:2 (0, 3));
  (* negative step: block (0,3) of the loop "for i = 9; i > 0; i -= 2"
     covers user values 9, 7, 5 — bounds come out decreasing *)
  Alcotest.(check (pair int int)) "negative step descends from lo"
    (9, 3)
    (Ws.denormalise ~lo:9 ~step:(-2) (0, 3));
  Alcotest.(check (pair int int)) "negative step, interior block"
    (5, -1)
    (Ws.denormalise ~lo:9 ~step:(-2) (2, 5));
  Alcotest.(check (pair int int)) "empty block maps to an empty block"
    (3, 3)
    (Ws.denormalise ~lo:9 ~step:(-2) (3, 3))

let test_denormalise_covers_downward_loop () =
  (* splitting [0, trips) statically and denormalising with step -3
     must enumerate exactly the iterations of
     "for i = 20; i > 2; i -= 3": 20 17 14 11 8 5 *)
  let lo = 20 and hi = 2 and step = -3 in
  let trips = Ws.trip_count ~lo ~hi ~step () in
  let values =
    List.concat_map
      (fun tid ->
        match Ws.static_block ~tid ~nthreads:4 ~trips with
        | None -> []
        | Some block ->
            let b, _ = Ws.denormalise ~lo ~step block in
            let size = snd block - fst block in
            List.init size (fun k -> b + (k * step)))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "downward iterations, each exactly once"
    [ 20; 17; 14; 11; 8; 5 ]
    (List.sort (fun a b -> compare b a) values)

let test_guided_chunks_decrease () =
  let rec walk remaining acc =
    if remaining = 0 then List.rev acc
    else
      let c = Ws.guided_next_chunk ~nthreads:4 ~chunk:1 ~remaining in
      walk (remaining - c) (c :: acc)
  in
  let sizes = walk 1000 [] in
  (* sizes never increase and cover everything *)
  Alcotest.(check int) "covers all iterations" 1000
    (List.fold_left ( + ) 0 sizes);
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "chunk sizes non-increasing" true
    (non_increasing sizes);
  Alcotest.(check bool) "first chunk is remaining/(2*nthreads)" true
    (List.hd sizes = 125)

let test_dispatch_dynamic_sequential () =
  let d = Ws.Dispatch.create ~kind:Ws.Dispatch.Dyn ~trips:10 ~chunk:3 ~nthreads:2 in
  let claim () = Ws.Dispatch.next d in
  Alcotest.(check (option (pair int int))) "1st" (Some (0, 3)) (claim ());
  Alcotest.(check (option (pair int int))) "2nd" (Some (3, 6)) (claim ());
  Alcotest.(check (option (pair int int))) "3rd" (Some (6, 9)) (claim ());
  Alcotest.(check (option (pair int int))) "4th (short)" (Some (9, 10)) (claim ());
  Alcotest.(check (option (pair int int))) "exhausted" None (claim ())

(* ---- properties ---- *)

let cover_list = List.concat_map (fun (b, e) -> List.init (e - b) (fun k -> b + k))

let params_gen =
  QCheck2.Gen.(
    let* nthreads = int_range 1 17 in
    let* trips = int_range 0 200 in
    return (nthreads, trips))

let prop_static_block_partition =
  QCheck2.Test.make ~name:"static blocks partition the iteration space"
    ~count:300 params_gen (fun (nthreads, trips) ->
      let covered =
        List.concat_map
          (fun tid ->
            match Ws.static_block ~tid ~nthreads ~trips with
            | None -> []
            | Some (b, e) -> List.init (e - b) (fun k -> b + k))
          (List.init nthreads Fun.id)
      in
      List.sort compare covered = List.init trips Fun.id)

let prop_static_block_balanced =
  QCheck2.Test.make ~name:"static block sizes differ by at most one"
    ~count:300 params_gen (fun (nthreads, trips) ->
      let sizes =
        List.map
          (fun tid ->
            match Ws.static_block ~tid ~nthreads ~trips with
            | None -> 0
            | Some (b, e) -> e - b)
          (List.init nthreads Fun.id)
      in
      let mx = List.fold_left max 0 sizes in
      let mn = List.fold_left min max_int sizes in
      trips = 0 || mx - mn <= 1)

let chunk_params_gen =
  QCheck2.Gen.(
    let* nthreads = int_range 1 9 in
    let* trips = int_range 0 150 in
    let* chunk = int_range 1 20 in
    return (nthreads, trips, chunk))

let prop_static_chunks_partition =
  QCheck2.Test.make ~name:"static chunks partition the iteration space"
    ~count:300 chunk_params_gen (fun (nthreads, trips, chunk) ->
      let covered =
        List.concat_map
          (fun tid -> cover_list (Ws.static_chunks ~tid ~nthreads ~trips ~chunk))
          (List.init nthreads Fun.id)
      in
      List.sort compare covered = List.init trips Fun.id)

(* Reference model for the round-robin split, written independently of
   the production code (which now derives the list from the iterator). *)
let spec_static_chunks ~tid ~nthreads ~trips ~chunk =
  let rec collect acc start =
    if start >= trips then List.rev acc
    else
      let stop = min trips (start + chunk) in
      collect ((start, stop) :: acc) (start + (chunk * nthreads))
  in
  collect [] (tid * chunk)

let prop_static_chunks_iter_agrees =
  QCheck2.Test.make
    ~name:"static_chunks_iter matches the round-robin specification"
    ~count:300 chunk_params_gen (fun (nthreads, trips, chunk) ->
      List.for_all
        (fun tid ->
          let via_iter = ref [] in
          Ws.static_chunks_iter ~tid ~nthreads ~trips ~chunk (fun b e ->
              via_iter := (b, e) :: !via_iter);
          let spec = spec_static_chunks ~tid ~nthreads ~trips ~chunk in
          List.rev !via_iter = spec
          && Ws.static_chunks ~tid ~nthreads ~trips ~chunk = spec)
        (List.init nthreads Fun.id))

(* Naive (overflow-prone near the int extremes, but run only far from
   them) reference for the inclusive trip count. *)
let spec_inclusive_trips ~lo ~hi ~step =
  let rec count i acc =
    if step > 0 then (if i > hi then acc else count (i + step) (acc + 1))
    else if i < hi then acc
    else count (i + step) (acc + 1)
  in
  count lo 0

let prop_inclusive_trip_count =
  QCheck2.Test.make
    ~name:"inclusive trip count matches enumeration and survives extremes"
    ~count:500
    QCheck2.Gen.(
      let* extreme = bool in
      let* step_mag = int_range 1 7 in
      let* up = bool in
      let* span = int_range 0 50 in
      let* lo0 = int_range (-100) 100 in
      return (extreme, step_mag, up, span, lo0))
    (fun (extreme, step_mag, up, span, lo0) ->
      let step = if up then step_mag else -step_mag in
      if extreme then begin
        (* pin the far bound to the int extreme the old code wrapped at *)
        let lo, hi =
          if up then (max_int - span, max_int) else (min_int + span, min_int)
        in
        let expected = (span / step_mag) + 1 in
        Ws.trip_count ~inclusive:true ~lo ~hi ~step () = expected
      end
      else begin
        let hi = if up then lo0 + span else lo0 - span in
        Ws.trip_count ~inclusive:true ~lo:lo0 ~hi ~step ()
        = spec_inclusive_trips ~lo:lo0 ~hi ~step
      end)

let prop_dispatch_partition =
  QCheck2.Test.make
    ~name:"dynamic/guided dispatch covers every iteration exactly once"
    ~count:300
    QCheck2.Gen.(
      let* kind = oneofl [ Ws.Dispatch.Dyn; Ws.Dispatch.Gui ] in
      let* nthreads = int_range 1 9 in
      let* trips = int_range 0 150 in
      let* chunk = int_range 1 20 in
      return (kind, nthreads, trips, chunk))
    (fun (kind, nthreads, trips, chunk) ->
      let d = Ws.Dispatch.create ~kind ~trips ~chunk ~nthreads in
      let rec drain acc =
        match Ws.Dispatch.next d with
        | None -> List.rev acc
        | Some c -> drain (c :: acc)
      in
      cover_list (drain []) = List.init trips Fun.id)

let suite =
  [ Alcotest.test_case "trip counts" `Quick test_trip_count;
    Alcotest.test_case "trip counts at the int extremes" `Quick
      test_trip_count_extreme_bounds;
    Alcotest.test_case "exhausted dispatcher cursor is clamped" `Quick
      test_dispatch_exhausted_cursor_is_clamped;
    Alcotest.test_case "exhausted dispatcher under contention" `Quick
      test_dispatch_exhausted_under_contention;
    Alcotest.test_case "static block balance" `Quick test_static_block_balance;
    Alcotest.test_case "more threads than trips" `Quick
      test_static_block_fewer_trips_than_threads;
    Alcotest.test_case "chunked static round robin" `Quick
      test_static_chunks_round_robin;
    Alcotest.test_case "denormalise both step signs" `Quick test_denormalise;
    Alcotest.test_case "denormalised blocks cover a downward loop" `Quick
      test_denormalise_covers_downward_loop;
    Alcotest.test_case "guided chunks decrease and cover" `Quick
      test_guided_chunks_decrease;
    Alcotest.test_case "dynamic dispatch sequence" `Quick
      test_dispatch_dynamic_sequential;
    QCheck_alcotest.to_alcotest prop_inclusive_trip_count;
    QCheck_alcotest.to_alcotest prop_static_block_partition;
    QCheck_alcotest.to_alcotest prop_static_block_balanced;
    QCheck_alcotest.to_alcotest prop_static_chunks_partition;
    QCheck_alcotest.to_alcotest prop_static_chunks_iter_agrees;
    QCheck_alcotest.to_alcotest prop_dispatch_partition;
  ]

(* The hot-team worker pool: persistence across many regions, team
   reuse, nested/oversized fallback, failure propagation through pooled
   workers, and the OMP_WAIT_POLICY / ZIGOMP_BLOCKTIME knobs. *)

open Omprt

let nt = 4  (* oversubscribed on this host; parked workers must block *)

(* Restore any ICV the test mutated; other suites depend on them. *)
let with_restored_icvs f =
  let saved_limit = Icv.global.thread_limit in
  let saved_blocktime = Icv.global.blocktime in
  let saved_policy = Icv.global.wait_policy in
  let saved_levels = Icv.global.max_active_levels in
  Fun.protect
    ~finally:(fun () ->
      Icv.global.thread_limit <- saved_limit;
      Icv.global.blocktime <- saved_blocktime;
      Icv.global.wait_policy <- saved_policy;
      Icv.global.max_active_levels <- saved_levels)
    f

let test_pooled_fork_covers () =
  let seen = Array.make nt false in
  Team.fork ~num_threads:nt (fun ~tid -> seen.(tid) <- true);
  Alcotest.(check (array bool)) "every tid ran" (Array.make nt true) seen;
  Alcotest.(check bool) "pool holds persistent workers" true
    (Pool.size () >= nt - 1)

let test_worker_cap_and_reuse () =
  (* 150 consecutive same-size regions: the pool must not spawn more
     than nt-1 domains in total, and must recycle the team structure. *)
  Profile.reset ();
  let total = Atomic.make 0 in
  for _ = 1 to 150 do
    Omp.parallel ~num_threads:nt (fun () -> Atomics.Int.add total 1)
  done;
  Alcotest.(check int) "every region ran every thread" (150 * nt)
    (Atomic.get total);
  let s = Profile.pool_stats () in
  Alcotest.(check bool) "workers spawned <= nthreads-1" true
    (s.Profile.workers_spawned <= nt - 1);
  Alcotest.(check bool) "team reuse hits > 0" true (s.Profile.reuse_hits > 0);
  Alcotest.(check bool) "forks served through the pool" true
    (s.Profile.forks_served >= 150)

let test_thousand_back_to_back_forks () =
  let total = Atomic.make 0 in
  for _ = 1 to 1000 do
    Omp.parallel ~num_threads:nt (fun () -> Atomics.Int.add total 1)
  done;
  Alcotest.(check int) "1000 pooled regions all complete" (1000 * nt)
    (Atomic.get total)

let test_nested_regions_fall_back () =
  with_restored_icvs @@ fun () ->
  Icv.global.max_active_levels <- 2;  (* nesting is off by default *)
  Profile.reset ();
  let total = Atomic.make 0 in
  Omp.parallel ~num_threads:2 (fun () ->
      Omp.parallel ~num_threads:2 (fun () -> Atomics.Int.add total 1));
  Alcotest.(check int) "2 x 2 executions" 4 (Atomic.get total);
  let s = Profile.pool_stats () in
  Alcotest.(check bool) "both inner regions spawned per fork" true
    (s.Profile.fallback_forks >= 2);
  Alcotest.(check bool) "outer region used the pool" true
    (s.Profile.forks_served >= 1)

let test_serialised_nested_forks_are_counted () =
  (* default max_active_levels = 1: the inner forks run inline — no
     spawn-per-fork fallback, and the pool counters say why *)
  Profile.reset ();
  let total = Atomic.make 0 in
  Omp.parallel ~num_threads:2 (fun () ->
      Omp.parallel ~num_threads:2 (fun () -> Atomics.Int.add total 1));
  Alcotest.(check int) "inner regions serialised" 2 (Atomic.get total);
  let s = Profile.pool_stats () in
  Alcotest.(check int) "both inner forks counted as serialised" 2
    s.Profile.serialised_forks;
  Alcotest.(check int) "no spawn-per-fork fallback" 0
    s.Profile.fallback_forks

let test_oversized_team_is_capped () =
  (* thread_limit now caps the team size up front (OpenMP contention
     group), so the capped team still goes through the pool rather than
     falling back to spawn-per-fork as it used to *)
  with_restored_icvs @@ fun () ->
  Icv.global.thread_limit <- 2;
  Profile.reset ();
  let seen = Array.make nt false in
  Team.fork ~num_threads:nt (fun ~tid -> seen.(tid) <- true);
  Alcotest.(check (array bool)) "team capped to thread_limit"
    [| true; true; false; false |] seen;
  let s = Profile.pool_stats () in
  Alcotest.(check int) "capped team served by the pool" 1
    s.Profile.forks_served;
  Alcotest.(check int) "no spawn-per-fork fallback" 0
    s.Profile.fallback_forks

let test_worker_failure_carries_tid () =
  (* the failing thread is a pooled worker, not the master *)
  Alcotest.(check bool) "tid 2's failure reaches the master" true
    (try
       Omp.parallel ~num_threads:nt (fun () ->
           if Omp.thread_num () = 2 then failwith "pooled boom");
       false
     with Team.Worker_failure (2, Failure msg) -> msg = "pooled boom");
  (* master failure takes precedence, as with spawn-per-fork *)
  Alcotest.(check bool) "master failure reported as tid 0" true
    (try
       Omp.parallel ~num_threads:nt (fun () ->
           if Omp.thread_num () = 0 then failwith "master boom");
       false
     with Team.Worker_failure (0, Failure msg) -> msg = "master boom")

let test_pool_survives_worker_failure () =
  (try
     Omp.parallel ~num_threads:nt (fun () ->
         if Omp.thread_num () = 1 then failwith "transient")
   with Team.Worker_failure _ -> ());
  let seen = Array.make nt false in
  Team.fork ~num_threads:nt (fun ~tid -> seen.(tid) <- true);
  Alcotest.(check (array bool)) "pool healthy after a failed region"
    (Array.make nt true) seen

let test_blocktime_extremes () =
  with_restored_icvs @@ fun () ->
  (* blocktime 0: every park goes straight to the condvar *)
  Icv.global.blocktime <- 0;
  let a = Atomic.make 0 in
  for _ = 1 to 20 do
    Omp.parallel ~num_threads:nt (fun () -> Atomics.Int.add a 1)
  done;
  Alcotest.(check int) "pure blocking waits work" (20 * nt) (Atomic.get a);
  (* a large spin budget: back-to-back forks are caught while spinning *)
  Icv.global.blocktime <- 50_000;
  let b = Atomic.make 0 in
  for _ = 1 to 20 do
    Omp.parallel ~num_threads:nt (fun () -> Atomics.Int.add b 1)
  done;
  Alcotest.(check int) "spinning waits work" (20 * nt) (Atomic.get b)

(* --- ICV environment parsing ------------------------------------- *)

(* Unix.putenv cannot unset; an empty value parses as garbage, which
   must fall back to the documented default — also worth asserting. *)
let with_env pairs f =
  let saved =
    List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs
  in
  let saved_nthreads = Icv.global.nthreads in
  let saved_sched = Icv.global.run_sched in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (k, old) -> Unix.putenv k (Option.value old ~default:""))
        saved;
      Icv.reset ();
      (* reset re-reads the environment; the team-size and schedule
         ICVs other suites rely on must survive this test *)
      Icv.global.nthreads <- saved_nthreads;
      Icv.global.run_sched <- saved_sched)
    f

let test_wait_policy_parsing () =
  with_env [ ("OMP_WAIT_POLICY", "active"); ("ZIGOMP_BLOCKTIME", "") ]
    (fun () ->
      Icv.reset ();
      Alcotest.(check bool) "active parsed" true
        (Icv.global.wait_policy = Icv.Active);
      Alcotest.(check bool) "active policy implies a large spin budget"
        true (Icv.global.blocktime > 1_000));
  with_env [ ("OMP_WAIT_POLICY", "PASSIVE"); ("ZIGOMP_BLOCKTIME", "") ]
    (fun () ->
      Icv.reset ();
      Alcotest.(check bool) "passive parsed case-insensitively" true
        (Icv.global.wait_policy = Icv.Passive));
  with_env [ ("OMP_WAIT_POLICY", "bogus"); ("ZIGOMP_BLOCKTIME", "") ]
    (fun () ->
      Icv.reset ();
      Alcotest.(check bool) "garbage defaults to passive" true
        (Icv.global.wait_policy = Icv.Passive))

let test_blocktime_parsing () =
  with_env [ ("ZIGOMP_BLOCKTIME", "1234") ] (fun () ->
      Icv.reset ();
      Alcotest.(check int) "explicit blocktime wins" 1234
        Icv.global.blocktime);
  with_env [ ("ZIGOMP_BLOCKTIME", "0") ] (fun () ->
      Icv.reset ();
      Alcotest.(check int) "zero means block immediately" 0
        Icv.global.blocktime);
  with_env [ ("ZIGOMP_BLOCKTIME", "-5"); ("OMP_WAIT_POLICY", "") ]
    (fun () ->
      Icv.reset ();
      Alcotest.(check int) "negative rejected, passive default" 200
        Icv.global.blocktime)

let test_api_blocktime_round_trip () =
  with_restored_icvs @@ fun () ->
  Api.set_blocktime 777;
  Alcotest.(check int) "set/get" 777 (Api.get_blocktime ());
  Api.set_blocktime (-1);
  Alcotest.(check int) "negative ignored" 777 (Api.get_blocktime ())

let test_profile_report_mentions_pool () =
  Profile.reset ();
  Omp.parallel ~num_threads:nt (fun () -> ());
  Alcotest.(check bool) "report includes pool counters" true
    (Astring_contains.contains (Profile.report ()) "hot-team pool")

let suite =
  [ Alcotest.test_case "pooled fork covers every tid" `Quick
      test_pooled_fork_covers;
    Alcotest.test_case "worker cap and team reuse over 150 regions" `Quick
      test_worker_cap_and_reuse;
    Alcotest.test_case "1000 back-to-back forks" `Quick
      test_thousand_back_to_back_forks;
    Alcotest.test_case "nested regions fall back to spawn" `Quick
      test_nested_regions_fall_back;
    Alcotest.test_case "serialised nested forks are counted" `Quick
      test_serialised_nested_forks_are_counted;
    Alcotest.test_case "oversized teams are capped to thread_limit" `Quick
      test_oversized_team_is_capped;
    Alcotest.test_case "Worker_failure carries the pooled tid" `Quick
      test_worker_failure_carries_tid;
    Alcotest.test_case "pool survives a failed region" `Quick
      test_pool_survives_worker_failure;
    Alcotest.test_case "blocktime 0 and large both serve forks" `Quick
      test_blocktime_extremes;
    Alcotest.test_case "OMP_WAIT_POLICY parsing" `Quick
      test_wait_policy_parsing;
    Alcotest.test_case "ZIGOMP_BLOCKTIME parsing" `Quick
      test_blocktime_parsing;
    Alcotest.test_case "api blocktime round trip" `Quick
      test_api_blocktime_round_trip;
    Alcotest.test_case "profile report shows pool counters" `Quick
      test_profile_report_mentions_pool;
  ]
